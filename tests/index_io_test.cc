#include "index/index_io.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "core/topl_detector.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "storage/artifact.h"
#include "tests/test_util.h"

namespace topl {
namespace {

using testing::BuildIndexFor;
using testing::BuiltIndex;
using testing::Scores;

class IndexIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("topl_index_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    SmallWorldOptions gen;
    gen.num_vertices = 120;
    gen.seed = 81;
    gen.keywords.domain_size = 10;
    Result<Graph> g = MakeSmallWorld(gen);
    ASSERT_TRUE(g.ok());
    graph_ = std::make_unique<Graph>(std::move(g).value());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
  std::unique_ptr<Graph> graph_;
};

TEST_F(IndexIoTest, RoundTripPreservesQueryResults) {
  const BuiltIndex built = BuildIndexFor(*graph_);
  const std::string path = Path("index.bin");
  ASSERT_TRUE(IndexCodec::Write(built.pre(), built.tree, path).ok());

  Result<IndexCodec::LoadedIndex> loaded = IndexCodec::Read(path, *graph_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  Query q;
  q.keywords = {0, 1, 2, 3, 4};
  q.k = 3;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 5;
  TopLDetector original(*graph_, built.pre(), built.tree);
  TopLDetector restored(*graph_, *loaded->data, loaded->tree);
  Result<TopLResult> a = original.Search(q);
  Result<TopLResult> b = restored.Search(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(Scores(a->communities), Scores(b->communities));
  EXPECT_EQ(a->stats.candidates_refined, b->stats.candidates_refined);
  EXPECT_EQ(a->stats.TotalPruned(), b->stats.TotalPruned());
}

TEST_F(IndexIoTest, RoundTripPreservesRawData) {
  const BuiltIndex built = BuildIndexFor(*graph_);
  const std::string path = Path("index.bin");
  ASSERT_TRUE(IndexCodec::Write(built.pre(), built.tree, path).ok());
  Result<IndexCodec::LoadedIndex> loaded = IndexCodec::Read(path, *graph_);
  ASSERT_TRUE(loaded.ok());
  const PrecomputedData& pre = built.pre();
  const PrecomputedData& back = *loaded->data;
  ASSERT_EQ(back.r_max(), pre.r_max());
  ASSERT_EQ(back.num_thetas(), pre.num_thetas());
  for (VertexId v = 0; v < graph_->NumVertices(); ++v) {
    for (std::uint32_t r = 1; r <= pre.r_max(); ++r) {
      EXPECT_EQ(back.SupportBound(v, r), pre.SupportBound(v, r));
      for (std::uint32_t z = 0; z < pre.num_thetas(); ++z) {
        EXPECT_DOUBLE_EQ(back.ScoreBound(v, r, z), pre.ScoreBound(v, r, z));
      }
    }
  }
  ASSERT_EQ(loaded->tree.NumNodes(), built.tree.NumNodes());
  EXPECT_EQ(loaded->tree.root(), built.tree.root());
  EXPECT_EQ(loaded->tree.height(), built.tree.height());
}

TEST_F(IndexIoTest, RejectsWrongGraph) {
  const BuiltIndex built = BuildIndexFor(*graph_);
  const std::string path = Path("index.bin");
  ASSERT_TRUE(IndexCodec::Write(built.pre(), built.tree, path).ok());
  SmallWorldOptions gen;
  gen.num_vertices = 60;  // different size
  Result<Graph> other = MakeSmallWorld(gen);
  ASSERT_TRUE(other.ok());
  Result<IndexCodec::LoadedIndex> loaded = IndexCodec::Read(path, *other);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

TEST_F(IndexIoTest, RejectsBadMagicAndTruncation) {
  const std::string junk = Path("junk.bin");
  {
    std::ofstream out(junk, std::ios::binary);
    out << "garbage";
  }
  EXPECT_TRUE(IndexCodec::Read(junk, *graph_).status().IsCorruption());

  const BuiltIndex built = BuildIndexFor(*graph_);
  const std::string path = Path("index.bin");
  ASSERT_TRUE(IndexCodec::Write(built.pre(), built.tree, path).ok());
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 3);
  EXPECT_TRUE(IndexCodec::Read(path, *graph_).status().IsCorruption());
}

TEST_F(IndexIoTest, RejectsTrailingGarbage) {
  const BuiltIndex built = BuildIndexFor(*graph_);
  const std::string path = Path("index.bin");
  ASSERT_TRUE(IndexCodec::Write(built.pre(), built.tree, path).ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "extra";
  }
  Result<IndexCodec::LoadedIndex> loaded = IndexCodec::Read(path, *graph_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST_F(IndexIoTest, ReadsArtifactsThroughTheLegacyApi) {
  // IndexCodec::Read sniffs TOPLIDX2 and returns zero-copy views.
  const BuiltIndex built = BuildIndexFor(*graph_);
  const std::string path = Path("index.idx");
  ASSERT_TRUE(ArtifactWriter::Write(*graph_, built.pre(), built.tree, path).ok());
  Result<IndexCodec::LoadedIndex> loaded = IndexCodec::Read(path, *graph_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->data->IsMapped());
  EXPECT_TRUE(loaded->tree.IsMapped());
  EXPECT_EQ(loaded->tree.NumNodes(), built.tree.NumNodes());
}

TEST_F(IndexIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(IndexCodec::Read(Path("absent.bin"), *graph_).status().IsIOError());
}

}  // namespace
}  // namespace topl

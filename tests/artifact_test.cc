// The TOPLIDX2 storage layer: an owned-memory offline phase and its
// mmap-loaded twin must be indistinguishable to the detectors, the artifact
// must reject corruption via per-section checksums, and Engine::Open must
// take the zero-copy path (reusing engine_test's exact-match bar: same
// communities, same member lists, bit-identical scores).

#include "storage/artifact.h"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "core/dtopl_detector.h"
#include "core/topl_detector.h"
#include "engine/engine.h"
#include "graph/binary_io.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "index/index_io.h"
#include "storage/mapped_file.h"
#include "tests/test_util.h"

namespace topl {
namespace {

using testing::BuildIndexFor;
using testing::BuiltIndex;

class ArtifactTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("topl_artifact_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    graph_ = std::make_unique<Graph>(MakeTestGraph(120, /*seed=*/81));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static Graph MakeTestGraph(std::size_t n, std::uint64_t seed) {
    SmallWorldOptions gen;
    gen.num_vertices = n;
    gen.seed = seed;
    gen.keywords.domain_size = 10;
    Result<Graph> g = MakeSmallWorld(gen);
    EXPECT_TRUE(g.ok()) << g.status().ToString();
    return std::move(g).value();
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  /// A handful of queries that actually match vertices of the 10-keyword
  /// domain, mixing radii and truss levels.
  static std::vector<Query> TestQueries() {
    std::vector<Query> queries;
    for (std::uint32_t i = 0; i < 4; ++i) {
      Query q;
      q.keywords = {static_cast<KeywordId>(i), static_cast<KeywordId>(i + 2),
                    static_cast<KeywordId>(i + 5)};
      q.k = 3;
      q.radius = 1 + i % 2;
      q.theta = 0.2;
      q.top_l = 4;
      queries.push_back(std::move(q));
    }
    return queries;
  }

  static void ExpectSameCommunities(const std::vector<CommunityResult>& actual,
                                    const std::vector<CommunityResult>& expected) {
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].community.center, expected[i].community.center) << i;
      EXPECT_EQ(actual[i].community.vertices, expected[i].community.vertices) << i;
      EXPECT_EQ(actual[i].influence.vertices, expected[i].influence.vertices) << i;
      EXPECT_EQ(actual[i].score(), expected[i].score()) << i;
    }
  }

  static std::vector<char> ReadAll(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
  }

  static void WriteAll(const std::string& path, const std::vector<char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::filesystem::path dir_;
  std::unique_ptr<Graph> graph_;
};

TEST_F(ArtifactTest, MappedTwinAnswersIdenticalTopLAndDTopLQueries) {
  const BuiltIndex built = BuildIndexFor(*graph_);
  const std::string path = Path("index.idx");
  ASSERT_TRUE(ArtifactWriter::Write(*graph_, built.pre(), built.tree, path).ok());

  Result<MappedIndex> mapped = ArtifactReader::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped->graph.IsMapped());
  EXPECT_TRUE(mapped->pre->IsMapped());
  EXPECT_TRUE(mapped->tree.IsMapped());
  EXPECT_FALSE(graph_->IsMapped());
  ASSERT_EQ(mapped->graph.NumVertices(), graph_->NumVertices());
  ASSERT_EQ(mapped->graph.NumEdges(), graph_->NumEdges());

  TopLDetector owned_topl(*graph_, built.pre(), built.tree);
  TopLDetector mapped_topl(mapped->graph, *mapped->pre, mapped->tree);
  DTopLDetector owned_dtopl(*graph_, built.pre(), built.tree);
  DTopLDetector mapped_dtopl(mapped->graph, *mapped->pre, mapped->tree);
  DTopLOptions dtopl_options;
  dtopl_options.n_factor = 3;

  for (const Query& q : TestQueries()) {
    Result<TopLResult> a = owned_topl.Search(q);
    Result<TopLResult> b = mapped_topl.Search(q);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ExpectSameCommunities(b->communities, a->communities);
    EXPECT_EQ(a->stats.heap_pops, b->stats.heap_pops);
    EXPECT_EQ(a->stats.candidates_refined, b->stats.candidates_refined);
    EXPECT_EQ(a->stats.TotalPruned(), b->stats.TotalPruned());

    Result<DTopLResult> da = owned_dtopl.Search(q, dtopl_options);
    Result<DTopLResult> db = mapped_dtopl.Search(q, dtopl_options);
    ASSERT_TRUE(da.ok()) << da.status().ToString();
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ExpectSameCommunities(db->communities, da->communities);
    EXPECT_EQ(da->diversity_score, db->diversity_score);
  }
}

TEST_F(ArtifactTest, MappedStructuresOutliveTheMappedIndex) {
  const BuiltIndex built = BuildIndexFor(*graph_);
  const std::string path = Path("index.idx");
  ASSERT_TRUE(ArtifactWriter::Write(*graph_, built.pre(), built.tree, path).ok());

  // Move the pieces out and drop the MappedIndex (and even delete the file:
  // the mapping holds the pages).
  Result<MappedIndex> opened = ArtifactReader::Open(path);
  ASSERT_TRUE(opened.ok());
  Graph graph = std::move(opened->graph);
  std::unique_ptr<PrecomputedData> pre = std::move(opened->pre);
  TreeIndex tree = std::move(opened->tree);
  opened = Status::Internal("dropped");
  std::filesystem::remove(path);

  TopLDetector detector(graph, *pre, tree);
  Result<TopLResult> answer = detector.Search(TestQueries()[0]);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_FALSE(answer->communities.empty());
}

TEST_F(ArtifactTest, CopyOfMappedPrecomputeIsOwnedAndEqual) {
  const BuiltIndex built = BuildIndexFor(*graph_);
  const std::string path = Path("index.idx");
  ASSERT_TRUE(ArtifactWriter::Write(*graph_, built.pre(), built.tree, path).ok());
  Result<MappedIndex> mapped = ArtifactReader::Open(path);
  ASSERT_TRUE(mapped.ok());

  PrecomputedData copy = *mapped->pre;  // deep copy materializes the views
  EXPECT_FALSE(copy.IsMapped());
  for (VertexId v = 0; v < graph_->NumVertices(); ++v) {
    EXPECT_EQ(copy.CenterTrussBound(v), built.pre().CenterTrussBound(v));
    for (std::uint32_t r = 1; r <= copy.r_max(); ++r) {
      EXPECT_EQ(copy.SupportBound(v, r), built.pre().SupportBound(v, r));
      for (std::uint32_t z = 0; z < copy.num_thetas(); ++z) {
        EXPECT_EQ(copy.ScoreBound(v, r, z), built.pre().ScoreBound(v, r, z));
      }
    }
  }
}

TEST_F(ArtifactTest, EngineOpensArtifactThroughMmapPathWithIdenticalResults) {
  const std::string graph_path = Path("graph.bin");
  const std::string index_path = Path("index.idx");
  ASSERT_TRUE(WriteGraphBinary(*graph_, graph_path).ok());
  const BuiltIndex built = BuildIndexFor(*graph_);
  ASSERT_TRUE(ArtifactWriter::Write(*graph_, built.pre(), built.tree, index_path).ok());

  EngineOptions options;
  options.graph_path = graph_path;
  options.index_path = index_path;
  options.build_index_if_missing = false;
  Result<std::unique_ptr<Engine>> mmap_engine = Engine::Open(options);
  ASSERT_TRUE(mmap_engine.ok()) << mmap_engine.status().ToString();
  EXPECT_EQ((*mmap_engine)->index_source(), Engine::IndexSource::kMappedArtifact);
  EXPECT_TRUE((*mmap_engine)->graph().IsMapped());
  EXPECT_TRUE((*mmap_engine)->precomputed().IsMapped());
  EXPECT_TRUE((*mmap_engine)->tree().IsMapped());

  // The same offline phase built in-process must answer identically.
  Result<std::unique_ptr<Engine>> built_engine =
      Engine::FromGraph(MakeTestGraph(120, /*seed=*/81));
  ASSERT_TRUE(built_engine.ok()) << built_engine.status().ToString();
  EXPECT_EQ((*built_engine)->index_source(), Engine::IndexSource::kInMemory);

  for (const Query& q : TestQueries()) {
    Result<TopLResult> a = (*built_engine)->Search(q);
    Result<TopLResult> b = (*mmap_engine)->Search(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectSameCommunities(b->communities, a->communities);
  }
}

TEST_F(ArtifactTest, EngineOpensArtifactWithoutGraphFile) {
  const std::string index_path = Path("index.idx");
  const BuiltIndex built = BuildIndexFor(*graph_);
  ASSERT_TRUE(ArtifactWriter::Write(*graph_, built.pre(), built.tree, index_path).ok());

  EngineOptions options;
  options.index_path = index_path;  // no graph_path: embedded graph serves
  options.build_index_if_missing = false;
  Result<std::unique_ptr<Engine>> engine = Engine::Open(options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->graph().NumVertices(), graph_->NumVertices());
  Result<TopLResult> answer = (*engine)->Search(TestQueries()[0]);
  EXPECT_TRUE(answer.ok());
}

TEST_F(ArtifactTest, EngineRejectsGraphArtifactMismatchDistinctly) {
  // Artifact built over a 120-vertex graph; graph file has 80 vertices.
  const std::string graph_path = Path("other_graph.bin");
  const std::string index_path = Path("index.idx");
  const Graph other = MakeTestGraph(80, /*seed=*/7);
  ASSERT_TRUE(WriteGraphBinary(other, graph_path).ok());
  const BuiltIndex built = BuildIndexFor(*graph_);
  ASSERT_TRUE(ArtifactWriter::Write(*graph_, built.pre(), built.tree, index_path).ok());

  EngineOptions options;
  options.graph_path = graph_path;
  options.index_path = index_path;
  options.build_index_if_missing = false;
  Result<std::unique_ptr<Engine>> engine = Engine::Open(options);
  ASSERT_FALSE(engine.ok());
  EXPECT_TRUE(engine.status().IsInvalidArgument());
  EXPECT_NE(engine.status().message().find("graph/artifact mismatch"),
            std::string::npos)
      << engine.status().ToString();
}

TEST_F(ArtifactTest, EngineSavesBuiltIndexAsArtifact) {
  const std::string graph_path = Path("graph.bin");
  const std::string index_path = Path("saved.idx");
  ASSERT_TRUE(WriteGraphBinary(*graph_, graph_path).ok());

  EngineOptions options;
  options.graph_path = graph_path;
  options.index_path = index_path;
  options.precompute.r_max = 2;
  Result<std::unique_ptr<Engine>> first = Engine::Open(options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ((*first)->index_source(), Engine::IndexSource::kInMemory);
  ASSERT_TRUE(ArtifactReader::IsArtifact(index_path));

  Result<std::unique_ptr<Engine>> second = Engine::Open(options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ((*second)->index_source(), Engine::IndexSource::kMappedArtifact);
  for (const Query& q : TestQueries()) {
    Result<TopLResult> a = (*first)->Search(q);
    Result<TopLResult> b = (*second)->Search(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectSameCommunities(b->communities, a->communities);
  }
}

TEST_F(ArtifactTest, MigratedLegacyIndexHasEqualBounds) {
  const BuiltIndex built = BuildIndexFor(*graph_);
  const std::string legacy_path = Path("legacy.bin");
  const std::string artifact_path = Path("migrated.idx");
  ASSERT_TRUE(IndexCodec::Write(built.pre(), built.tree, legacy_path).ok());

  // Migrate: legacy read -> artifact write -> mmap open (what
  // `topl_cli index migrate` does).
  Result<IndexCodec::LoadedIndex> loaded = IndexCodec::Read(legacy_path, *graph_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(
      ArtifactWriter::Write(*graph_, *loaded->data, loaded->tree, artifact_path)
          .ok());
  Result<MappedIndex> mapped = ArtifactReader::Open(artifact_path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  const PrecomputedData& pre = built.pre();
  const PrecomputedData& back = *mapped->pre;
  ASSERT_EQ(back.r_max(), pre.r_max());
  ASSERT_EQ(back.num_thetas(), pre.num_thetas());
  for (VertexId v = 0; v < graph_->NumVertices(); ++v) {
    EXPECT_EQ(back.CenterTrussBound(v), pre.CenterTrussBound(v));
    for (std::uint32_t r = 1; r <= pre.r_max(); ++r) {
      EXPECT_EQ(back.SupportBound(v, r), pre.SupportBound(v, r));
      ASSERT_EQ(back.SignatureWords(v, r).size(), pre.SignatureWords(v, r).size());
      for (std::size_t w = 0; w < pre.words_per_signature(); ++w) {
        EXPECT_EQ(back.SignatureWords(v, r)[w], pre.SignatureWords(v, r)[w]);
      }
      for (std::uint32_t z = 0; z < pre.num_thetas(); ++z) {
        EXPECT_EQ(back.ScoreBound(v, r, z), pre.ScoreBound(v, r, z));
      }
    }
  }
  const TreeIndex& tree = mapped->tree;
  ASSERT_EQ(tree.NumNodes(), built.tree.NumNodes());
  EXPECT_EQ(tree.root(), built.tree.root());
  EXPECT_EQ(tree.height(), built.tree.height());
  for (std::uint32_t id = 0; id < tree.NumNodes(); ++id) {
    EXPECT_EQ(tree.CenterTrussBound(id), built.tree.CenterTrussBound(id));
    for (std::uint32_t r = 1; r <= pre.r_max(); ++r) {
      EXPECT_EQ(tree.SupportBound(id, r), built.tree.SupportBound(id, r));
      for (std::uint32_t z = 0; z < pre.num_thetas(); ++z) {
        EXPECT_EQ(tree.ScoreBound(id, r, z), built.tree.ScoreBound(id, r, z));
      }
    }
  }
}

TEST_F(ArtifactTest, InPlaceRewritePreservesTheArtifact) {
  const BuiltIndex built = BuildIndexFor(*graph_);
  const std::string path = Path("index.idx");
  ASSERT_TRUE(ArtifactWriter::Write(*graph_, built.pre(), built.tree, path).ok());
  const std::vector<char> original = ReadAll(path);

  // Migrate with --in == --out: the payload spans are views into the very
  // mapping being rewritten, so Write must not truncate in place.
  Result<IndexCodec::LoadedIndex> loaded = IndexCodec::Read(path, *graph_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->data->IsMapped());
  ASSERT_TRUE(
      ArtifactWriter::Write(*graph_, *loaded->data, loaded->tree, path).ok());
  EXPECT_EQ(ReadAll(path), original);
  EXPECT_TRUE(ArtifactReader::Open(path).ok());
}

TEST_F(ArtifactTest, InspectReportsSectionsAndChecksums) {
  const BuiltIndex built = BuildIndexFor(*graph_);
  const std::string path = Path("index.idx");
  ASSERT_TRUE(ArtifactWriter::Write(*graph_, built.pre(), built.tree, path).ok());

  Result<ArtifactInfo> info = ArtifactReader::Inspect(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->version, 1u);
  EXPECT_TRUE(info->checksums_ok);
  EXPECT_EQ(info->num_vertices, graph_->NumVertices());
  EXPECT_EQ(info->num_edges, graph_->NumEdges());
  EXPECT_EQ(info->sections.size(), 17u);
  EXPECT_EQ(info->sections.front().name, "meta");
  for (const ArtifactSectionInfo& s : info->sections) {
    EXPECT_EQ(s.offset % 64, 0u) << s.name;
  }
}

TEST_F(ArtifactTest, FlippedBytesInEverySectionAreRejected) {
  const BuiltIndex built = BuildIndexFor(*graph_);
  const std::string path = Path("index.idx");
  ASSERT_TRUE(ArtifactWriter::Write(*graph_, built.pre(), built.tree, path).ok());
  Result<ArtifactInfo> info = ArtifactReader::Inspect(path);
  ASSERT_TRUE(info.ok());
  const std::vector<char> original = ReadAll(path);

  // One flip in the magic, one in the section table, and one in the middle
  // of every non-empty section payload: each must surface as Corruption.
  std::vector<std::size_t> positions = {0, 64 + 17};
  for (const ArtifactSectionInfo& s : info->sections) {
    if (s.size > 0) positions.push_back(s.offset + s.size / 2);
  }
  for (const std::size_t pos : positions) {
    ASSERT_LT(pos, original.size());
    std::vector<char> mutated = original;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x20);
    WriteAll(path, mutated);
    Result<MappedIndex> opened = ArtifactReader::Open(path);
    ASSERT_FALSE(opened.ok()) << "flip at " << pos << " was accepted";
    EXPECT_TRUE(opened.status().IsCorruption()) << opened.status().ToString();
  }
  // The pristine file still opens.
  WriteAll(path, original);
  EXPECT_TRUE(ArtifactReader::Open(path).ok());
}

TEST_F(ArtifactTest, TruncationsAreRejected) {
  const BuiltIndex built = BuildIndexFor(*graph_);
  const std::string path = Path("index.idx");
  ASSERT_TRUE(ArtifactWriter::Write(*graph_, built.pre(), built.tree, path).ok());
  const std::vector<char> original = ReadAll(path);

  for (const double fraction : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    const std::size_t len = static_cast<std::size_t>(
        static_cast<double>(original.size()) * fraction);
    WriteAll(path, std::vector<char>(original.begin(), original.begin() + len));
    Result<MappedIndex> opened = ArtifactReader::Open(path);
    ASSERT_FALSE(opened.ok()) << "truncation to " << len << " was accepted";
    EXPECT_TRUE(opened.status().IsCorruption());
  }
}

TEST_F(ArtifactTest, ChecksumVerificationCanBeSkippedButStructureIsStillChecked) {
  const BuiltIndex built = BuildIndexFor(*graph_);
  const std::string path = Path("index.idx");
  ASSERT_TRUE(ArtifactWriter::Write(*graph_, built.pre(), built.tree, path).ok());

  ArtifactReadOptions no_verify;
  no_verify.verify_checksums = false;
  EXPECT_TRUE(ArtifactReader::Open(path, no_verify).ok());

  // Structural damage (out-of-range root) is caught even without checksums:
  // corrupt the meta block's tree_root field directly.
  Result<ArtifactInfo> info = ArtifactReader::Inspect(path);
  ASSERT_TRUE(info.ok());
  std::vector<char> mutated = ReadAll(path);
  const std::size_t meta_offset = info->sections.front().offset;
  const std::size_t root_offset = meta_offset + 48;  // MetaBlock::tree_root
  std::uint32_t bogus_root = 0xFFFFFFFF;
  std::memcpy(mutated.data() + root_offset, &bogus_root, sizeof(bogus_root));
  WriteAll(path, mutated);
  Result<MappedIndex> opened = ArtifactReader::Open(path, no_verify);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsCorruption());
}

TEST_F(ArtifactTest, HugeIntermediateOffsetIsRejectedWithoutChecksums) {
  const BuiltIndex built = BuildIndexFor(*graph_);
  const std::string path = Path("index.idx");
  ASSERT_TRUE(ArtifactWriter::Write(*graph_, built.pre(), built.tree, path).ok());
  Result<ArtifactInfo> info = ArtifactReader::Inspect(path);
  ASSERT_TRUE(info.ok());

  // offsets[1] = 2^60: monotone w.r.t. offsets[0], wildly past the arcs
  // section. Validation must bound the whole offsets array before
  // dereferencing arcs through it — even with the checksum pass disabled.
  std::vector<char> mutated = ReadAll(path);
  const ArtifactSectionInfo& offsets_section = info->sections[1];
  ASSERT_EQ(offsets_section.name, "g.offsets");
  const std::uint64_t huge = 1ULL << 60;
  std::memcpy(mutated.data() + offsets_section.offset + 8, &huge, sizeof(huge));
  WriteAll(path, mutated);

  ArtifactReadOptions no_verify;
  no_verify.verify_checksums = false;
  Result<MappedIndex> opened = ArtifactReader::Open(path, no_verify);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsCorruption());
  EXPECT_NE(opened.status().message().find("non-monotonic arc offsets"),
            std::string::npos)
      << opened.status().ToString();
}

TEST_F(ArtifactTest, MissingFileIsIOError) {
  EXPECT_TRUE(ArtifactReader::Open(Path("absent.idx")).status().IsIOError());
  EXPECT_FALSE(ArtifactReader::IsArtifact(Path("absent.idx")));
}

TEST_F(ArtifactTest, LegacyFileIsNotAnArtifact) {
  const BuiltIndex built = BuildIndexFor(*graph_);
  const std::string path = Path("legacy.bin");
  ASSERT_TRUE(IndexCodec::Write(built.pre(), built.tree, path).ok());
  EXPECT_FALSE(ArtifactReader::IsArtifact(path));
  EXPECT_TRUE(ArtifactReader::Open(path).status().IsCorruption());
}

TEST_F(ArtifactTest, CompressedArtifactIsSmallerAndAnswersIdentically) {
  const BuiltIndex built = BuildIndexFor(*graph_);
  const std::string raw_path = Path("raw.idx");
  const std::string packed_path = Path("packed.idx");
  ASSERT_TRUE(
      ArtifactWriter::Write(*graph_, built.pre(), built.tree, raw_path).ok());
  ArtifactWriteOptions compress;
  compress.compress = true;
  ASSERT_TRUE(ArtifactWriter::Write(*graph_, built.pre(), built.tree,
                                    packed_path, compress)
                  .ok());
  EXPECT_LT(std::filesystem::file_size(packed_path),
            std::filesystem::file_size(raw_path));

  // The raw write stays version 1 (byte-stable for old readers); compression
  // is what opts in to version 2 and per-section encodings.
  Result<ArtifactInfo> raw_info = ArtifactReader::Inspect(raw_path);
  Result<ArtifactInfo> packed_info = ArtifactReader::Inspect(packed_path);
  ASSERT_TRUE(raw_info.ok());
  ASSERT_TRUE(packed_info.ok());
  EXPECT_EQ(raw_info->version, 1u);
  EXPECT_EQ(packed_info->version, 2u);
  std::size_t encoded_sections = 0;
  for (const ArtifactSectionInfo& s : packed_info->sections) {
    if (s.encoding != 0) ++encoded_sections;
  }
  EXPECT_GT(encoded_sections, 0u);

  Result<MappedIndex> raw = ArtifactReader::Open(raw_path);
  Result<MappedIndex> packed = ArtifactReader::Open(packed_path);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  ASSERT_TRUE(packed.ok()) << packed.status().ToString();
  EXPECT_FALSE(raw->compressed);
  EXPECT_TRUE(packed->compressed);

  TopLDetector raw_topl(raw->graph, *raw->pre, raw->tree);
  TopLDetector packed_topl(packed->graph, *packed->pre, packed->tree);
  for (const Query& q : TestQueries()) {
    Result<TopLResult> a = raw_topl.Search(q);
    Result<TopLResult> b = packed_topl.Search(q);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ExpectSameCommunities(b->communities, a->communities);
  }
}

TEST_F(ArtifactTest, CompressedSectionCorruptionIsRejected) {
  const BuiltIndex built = BuildIndexFor(*graph_);
  const std::string path = Path("packed.idx");
  ArtifactWriteOptions compress;
  compress.compress = true;
  ASSERT_TRUE(
      ArtifactWriter::Write(*graph_, built.pre(), built.tree, path, compress)
          .ok());
  Result<ArtifactInfo> info = ArtifactReader::Inspect(path);
  ASSERT_TRUE(info.ok());
  const std::vector<char> original = ReadAll(path);

  // Even with the checksum pass disabled, mangled varint payloads must fail
  // the decode (structurally), never crash or mis-decode silently.
  ArtifactReadOptions no_verify;
  no_verify.verify_checksums = false;
  std::size_t rejected = 0;
  for (const ArtifactSectionInfo& s : info->sections) {
    if (s.encoding == 0 || s.size == 0) continue;
    std::vector<char> mutated = original;
    // Truncate the stream logically: overwrite its tail with continuation
    // bytes so the last varint never terminates.
    for (std::size_t i = s.size > 4 ? s.size - 4 : 0; i < s.size; ++i) {
      mutated[s.offset + i] = static_cast<char>(0x80);
    }
    WriteAll(path, mutated);
    Result<MappedIndex> opened = ArtifactReader::Open(path, no_verify);
    if (!opened.ok()) {
      EXPECT_TRUE(opened.status().IsCorruption()) << s.name;
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
  WriteAll(path, original);
  EXPECT_TRUE(ArtifactReader::Open(path).ok());
}

TEST_F(ArtifactTest, ExternalIdPermutationRoundTrips) {
  const BuiltIndex built = BuildIndexFor(*graph_);
  const std::string path = Path("extids.idx");
  // Any bijection round-trips; reverse order exercises non-identity fully.
  std::vector<VertexId> permutation(graph_->NumVertices());
  for (VertexId v = 0; v < permutation.size(); ++v) {
    permutation[v] = static_cast<VertexId>(permutation.size() - 1 - v);
  }
  ArtifactWriteOptions options;
  options.external_ids = permutation;
  ASSERT_TRUE(
      ArtifactWriter::Write(*graph_, built.pre(), built.tree, path, options)
          .ok());

  Result<MappedIndex> mapped = ArtifactReader::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->external_ids, permutation);
  Result<ArtifactInfo> info = ArtifactReader::Inspect(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, 2u);
  EXPECT_TRUE(info->has_external_ids);
}

TEST_F(ArtifactTest, WriterRejectsNonPermutationExternalIds) {
  const BuiltIndex built = BuildIndexFor(*graph_);
  const std::string path = Path("bad_extids.idx");

  std::vector<VertexId> wrong_length(graph_->NumVertices() - 1, 0);
  ArtifactWriteOptions options;
  options.external_ids = wrong_length;
  EXPECT_TRUE(
      ArtifactWriter::Write(*graph_, built.pre(), built.tree, path, options)
          .IsInvalidArgument());

  std::vector<VertexId> duplicate(graph_->NumVertices());
  for (VertexId v = 0; v < duplicate.size(); ++v) duplicate[v] = v;
  duplicate[1] = duplicate[0];
  options.external_ids = duplicate;
  EXPECT_TRUE(
      ArtifactWriter::Write(*graph_, built.pre(), built.tree, path, options)
          .IsInvalidArgument());
}

TEST_F(ArtifactTest, CorruptedExternalIdSectionIsRejected) {
  const BuiltIndex built = BuildIndexFor(*graph_);
  const std::string path = Path("extids.idx");
  std::vector<VertexId> permutation(graph_->NumVertices());
  for (VertexId v = 0; v < permutation.size(); ++v) permutation[v] = v;
  ArtifactWriteOptions options;
  options.external_ids = permutation;
  ASSERT_TRUE(
      ArtifactWriter::Write(*graph_, built.pre(), built.tree, path, options)
          .ok());
  Result<ArtifactInfo> info = ArtifactReader::Inspect(path);
  ASSERT_TRUE(info.ok());
  const ArtifactSectionInfo* extids = nullptr;
  for (const ArtifactSectionInfo& s : info->sections) {
    if (s.name == "g.extids") extids = &s;
  }
  ASSERT_NE(extids, nullptr);
  const std::vector<char> original = ReadAll(path);
  ArtifactReadOptions no_verify;
  no_verify.verify_checksums = false;

  // A duplicated entry (no longer a bijection) must be rejected even without
  // the checksum pass.
  std::vector<char> duplicated = original;
  std::memcpy(duplicated.data() + extids->offset,
              duplicated.data() + extids->offset + sizeof(VertexId),
              sizeof(VertexId));
  WriteAll(path, duplicated);
  Result<MappedIndex> opened = ArtifactReader::Open(path, no_verify);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsCorruption()) << opened.status().ToString();

  // An out-of-range entry likewise.
  std::vector<char> out_of_range = original;
  const VertexId bogus = static_cast<VertexId>(graph_->NumVertices() + 13);
  std::memcpy(out_of_range.data() + extids->offset, &bogus, sizeof(bogus));
  WriteAll(path, out_of_range);
  opened = ArtifactReader::Open(path, no_verify);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsCorruption()) << opened.status().ToString();

  WriteAll(path, original);
  EXPECT_TRUE(ArtifactReader::Open(path, no_verify).ok());
}

TEST_F(ArtifactTest, CompressedCorruptionSweepStaysRejectedWithChecksums) {
  // The v1 flip sweep (FlippedBytesInEverySectionAreRejected) re-run over a
  // compressed v2 artifact: per-section checksums still catch every flip.
  const BuiltIndex built = BuildIndexFor(*graph_);
  const std::string path = Path("packed.idx");
  ArtifactWriteOptions compress;
  compress.compress = true;
  ASSERT_TRUE(
      ArtifactWriter::Write(*graph_, built.pre(), built.tree, path, compress)
          .ok());
  Result<ArtifactInfo> info = ArtifactReader::Inspect(path);
  ASSERT_TRUE(info.ok());
  const std::vector<char> original = ReadAll(path);

  std::vector<std::size_t> positions = {0};
  for (const ArtifactSectionInfo& s : info->sections) {
    if (s.size > 0) positions.push_back(s.offset + s.size / 2);
  }
  for (const std::size_t pos : positions) {
    ASSERT_LT(pos, original.size());
    std::vector<char> mutated = original;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x20);
    WriteAll(path, mutated);
    Result<MappedIndex> opened = ArtifactReader::Open(path);
    ASSERT_FALSE(opened.ok()) << "flip at " << pos << " was accepted";
    EXPECT_TRUE(opened.status().IsCorruption()) << opened.status().ToString();
  }
  WriteAll(path, original);
  EXPECT_TRUE(ArtifactReader::Open(path).ok());
}

}  // namespace
}  // namespace topl

// Locality reordering must be invisible to the algorithms: a reordered
// build answers every TopL/DTopL query with the same communities as the
// identity build once internal ids are unmapped through the stored
// permutation — bit-identical scores, identical member sets. The sweep
// drives 20 generator graphs through both builds; the remaining tests pin
// the permutation contract (validity, determinism, rejection of bad input)
// and the artifact round trip of the external-id section.

#include "graph/reorder.h"

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <tuple>
#include <vector>

#include "engine/engine.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "storage/artifact.h"
#include "tests/test_util.h"

namespace topl {
namespace {

Graph MakeSweepGraph(int which) {
  const std::size_t n = 200 + 100 * (which % 5);
  const std::uint64_t seed = 1000 + which;
  Result<Graph> g = Status::Internal("unset");
  switch (which % 4) {
    case 0: {
      SmallWorldOptions options;
      options.num_vertices = n;
      options.seed = seed;
      options.keywords.domain_size = 12;
      g = MakeSmallWorld(options);
      break;
    }
    case 1: {
      SmallWorldOptions options;
      options.num_vertices = n;
      options.seed = seed;
      options.keywords.domain_size = 12;
      options.keywords.distribution = KeywordDistribution::kZipf;
      g = MakeSmallWorld(options);
      break;
    }
    case 2:
      g = MakeDblpLike(n, seed);
      break;
    default:
      g = MakeAmazonLike(n, seed);
      break;
  }
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

/// Canonical form of a result list that is invariant under vertex
/// relabeling AND under reordering of equal-score communities: every
/// community becomes (score bits, sorted external members, sorted external
/// influence), and the list is sorted. Scores are compared as bit patterns —
/// the equivalence promised is bitwise, not approximate.
using CanonicalCommunity =
    std::tuple<std::uint64_t, std::vector<VertexId>, std::vector<VertexId>>;

std::vector<CanonicalCommunity> Canonicalize(
    const Engine& engine, const std::vector<CommunityResult>& communities) {
  std::vector<CanonicalCommunity> out;
  out.reserve(communities.size());
  for (const CommunityResult& c : communities) {
    std::vector<VertexId> members;
    members.reserve(c.community.vertices.size());
    for (VertexId v : c.community.vertices) members.push_back(engine.ExternalId(v));
    std::sort(members.begin(), members.end());
    std::vector<VertexId> influenced;
    influenced.reserve(c.influence.vertices.size());
    for (VertexId v : c.influence.vertices) influenced.push_back(engine.ExternalId(v));
    std::sort(influenced.begin(), influenced.end());
    out.emplace_back(std::bit_cast<std::uint64_t>(c.score()), std::move(members),
                     std::move(influenced));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Query> SweepQueries() {
  std::vector<Query> queries;
  for (std::uint32_t i = 0; i < 3; ++i) {
    Query q;
    q.keywords = {static_cast<KeywordId>(i), static_cast<KeywordId>(i + 3),
                  static_cast<KeywordId>(i + 7)};
    q.k = 3;
    q.radius = 1 + i % 2;
    q.theta = 0.2;
    // Large L: both builds must surface the complete answer set, so ties at
    // the cut line cannot make the lists differ by construction.
    q.top_l = 50;
    queries.push_back(std::move(q));
  }
  return queries;
}

TEST(ReorderTest, LocalityOrderIsAValidDeterministicPermutation) {
  for (int which = 0; which < 4; ++which) {
    const Graph g = MakeSweepGraph(which);
    const std::vector<VertexId> order = ComputeLocalityOrder(g);
    ASSERT_EQ(order.size(), g.NumVertices());
    std::vector<bool> seen(g.NumVertices(), false);
    for (VertexId v : order) {
      ASSERT_LT(v, g.NumVertices());
      ASSERT_FALSE(seen[v]) << "duplicate " << v;
      seen[v] = true;
    }
    // Deterministic: recomputing yields the identical order.
    EXPECT_EQ(ComputeLocalityOrder(g), order);
    // Hub-first: the first vertex is (one of) the max-degree vertices.
    std::size_t max_degree = 0;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      max_degree = std::max(max_degree, g.Degree(v));
    }
    EXPECT_EQ(g.Degree(order.front()), max_degree);
  }
}

TEST(ReorderTest, ApplyVertexOrderRejectsNonPermutations) {
  const Graph g = MakeSweepGraph(0);
  const std::size_t n = g.NumVertices();

  std::vector<VertexId> short_order(n - 1);
  for (VertexId i = 0; i < n - 1; ++i) short_order[i] = i;
  EXPECT_TRUE(ApplyVertexOrder(g, short_order).status().IsInvalidArgument());

  std::vector<VertexId> dup(n);
  for (VertexId i = 0; i < n; ++i) dup[i] = i;
  dup[1] = dup[0];
  EXPECT_TRUE(ApplyVertexOrder(g, dup).status().IsInvalidArgument());

  std::vector<VertexId> out_of_range(n);
  for (VertexId i = 0; i < n; ++i) out_of_range[i] = i;
  out_of_range[0] = static_cast<VertexId>(n + 7);
  EXPECT_TRUE(ApplyVertexOrder(g, out_of_range).status().IsInvalidArgument());
}

TEST(ReorderTest, ReorderedGraphIsTheSameNetworkUnderNewNames) {
  const Graph g = MakeSweepGraph(1);
  Result<ReorderedGraph> reordered = ReorderForLocality(g);
  ASSERT_TRUE(reordered.ok()) << reordered.status().ToString();
  const Graph& rg = reordered->graph;
  const std::vector<VertexId>& new_to_old = reordered->external_ids;
  ASSERT_EQ(rg.NumVertices(), g.NumVertices());
  ASSERT_EQ(rg.NumEdges(), g.NumEdges());
  EXPECT_EQ(rg.KeywordDomainBound(), g.KeywordDomainBound());

  std::vector<VertexId> old_to_new(g.NumVertices());
  for (VertexId v = 0; v < new_to_old.size(); ++v) old_to_new[new_to_old[v]] = v;

  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const VertexId nv = old_to_new[v];
    ASSERT_EQ(rg.Degree(nv), g.Degree(v)) << v;
    // Arc multiset must match under the relabeling, probabilities included.
    std::vector<std::pair<VertexId, float>> expected;
    for (const Graph::Arc& arc : g.Neighbors(v)) {
      expected.emplace_back(old_to_new[arc.to], arc.prob);
    }
    std::vector<std::pair<VertexId, float>> actual;
    for (const Graph::Arc& arc : rg.Neighbors(nv)) {
      actual.emplace_back(arc.to, arc.prob);
    }
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    ASSERT_EQ(actual, expected) << v;
    // Keyword sets carry over verbatim.
    const auto kw_old = g.Keywords(v);
    const auto kw_new = rg.Keywords(nv);
    ASSERT_TRUE(std::equal(kw_old.begin(), kw_old.end(), kw_new.begin(),
                           kw_new.end()))
        << v;
  }
}

TEST(ReorderTest, TwentyGraphSweepAnswersMatchModuloRelabeling) {
  for (int which = 0; which < 20; ++which) {
    SCOPED_TRACE("graph " + std::to_string(which));
    Graph identity_graph = MakeSweepGraph(which);
    Graph reorder_input = MakeSweepGraph(which);

    EngineOptions base;
    base.precompute.r_max = 2;
    Result<std::unique_ptr<Engine>> identity =
        Engine::FromGraph(std::move(identity_graph), base);
    ASSERT_TRUE(identity.ok()) << identity.status().ToString();
    ASSERT_TRUE((*identity)->ExternalIds().empty());

    EngineOptions reordered_options = base;
    reordered_options.reorder_vertices = true;
    Result<std::unique_ptr<Engine>> reordered =
        Engine::FromGraph(std::move(reorder_input), reordered_options);
    ASSERT_TRUE(reordered.ok()) << reordered.status().ToString();
    ASSERT_FALSE((*reordered)->ExternalIds().empty());

    DTopLOptions dtopl_options;
    dtopl_options.n_factor = 3;
    for (const Query& q : SweepQueries()) {
      Result<TopLResult> a = (*identity)->Search(q);
      Result<TopLResult> b = (*reordered)->Search(q);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      EXPECT_EQ(Canonicalize(**identity, a->communities),
                Canonicalize(**reordered, b->communities));

      Result<DTopLResult> da = (*identity)->SearchDiversified(q, dtopl_options);
      Result<DTopLResult> db = (*reordered)->SearchDiversified(q, dtopl_options);
      ASSERT_TRUE(da.ok()) << da.status().ToString();
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      EXPECT_EQ(Canonicalize(**identity, da->communities),
                Canonicalize(**reordered, db->communities));
    }
  }
}

TEST(ReorderTest, PermutationRoundTripsThroughTheArtifact) {
  const Graph original = MakeSweepGraph(2);
  Result<ReorderedGraph> reordered = ReorderForLocality(original);
  ASSERT_TRUE(reordered.ok());

  const auto dir = std::filesystem::temp_directory_path() /
                   ("topl_reorder_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "reordered.idx").string();

  const testing::BuiltIndex built = testing::BuildIndexFor(reordered->graph);
  ArtifactWriteOptions options;
  options.external_ids = reordered->external_ids;
  ASSERT_TRUE(ArtifactWriter::Write(reordered->graph, built.pre(), built.tree,
                                    path, options)
                  .ok());

  Result<MappedIndex> mapped = ArtifactReader::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->external_ids, reordered->external_ids);

  Result<ArtifactInfo> info = ArtifactReader::Inspect(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, 2u);
  EXPECT_TRUE(info->has_external_ids);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace topl

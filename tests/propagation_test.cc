#include "influence/propagation.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <map>
#include <thread>

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "influence/influence_calculator.h"
#include "tests/test_util.h"

namespace topl {
namespace {

using testing::MakeGraph;
using testing::ReferenceUpp;

std::map<VertexId, double> AsMap(const InfluencedCommunity& c) {
  std::map<VertexId, double> out;
  for (std::size_t i = 0; i < c.size(); ++i) out[c.vertices[i]] = c.cpp[i];
  return out;
}

TEST(PropagationTest, SeedsHaveCppOne) {
  const Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}}, 0.5);
  PropagationEngine engine(g);
  const std::vector<VertexId> seeds = {0, 2};
  const auto result = engine.Compute(seeds, 0.4);
  const auto cpp = AsMap(result);
  EXPECT_DOUBLE_EQ(cpp.at(0), 1.0);
  EXPECT_DOUBLE_EQ(cpp.at(2), 1.0);
}

TEST(PropagationTest, PathProductChain) {
  const Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}}, 0.5);
  PropagationEngine engine(g);
  const std::vector<VertexId> seeds = {0};
  const auto cpp = AsMap(engine.Compute(seeds, 0.0));
  EXPECT_DOUBLE_EQ(cpp.at(1), 0.5);
  EXPECT_DOUBLE_EQ(cpp.at(2), 0.25);
  EXPECT_DOUBLE_EQ(cpp.at(3), 0.125);
}

TEST(PropagationTest, ThresholdCutsTail) {
  const Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}}, 0.5);
  PropagationEngine engine(g);
  const std::vector<VertexId> seeds = {0};
  const auto result = engine.Compute(seeds, 0.25);
  const auto cpp = AsMap(result);
  EXPECT_EQ(cpp.count(3), 0u);  // 0.125 < 0.25
  EXPECT_EQ(cpp.count(2), 1u);  // 0.25 >= 0.25 (inclusive per Definition 3)
  EXPECT_DOUBLE_EQ(result.score, 1.0 + 0.5 + 0.25);
}

TEST(PropagationTest, TakesBestPathNotShortest) {
  // Two routes 0→3: direct weak arc (0.1) vs two strong hops (0.6*0.6=0.36).
  GraphBuilder b(4);
  b.AddEdge(0, 3, 0.1);
  b.AddEdge(0, 1, 0.6);
  b.AddEdge(1, 3, 0.6);
  b.AddEdge(2, 3, 0.9);  // irrelevant branch
  Result<Graph> g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  PropagationEngine engine(*g);
  const std::vector<VertexId> seeds = {0};
  const auto cpp = AsMap(engine.Compute(seeds, 0.0));
  EXPECT_NEAR(cpp.at(3), 0.36, 1e-6);  // arc probs are floats: 0.6f*0.6f
}

TEST(PropagationTest, DirectionalityRespected) {
  // p(0→1) = 0.9 but p(1→0) = 0.1: influence from 1 must use 0.1.
  GraphBuilder b(2);
  b.AddEdge(0, 1, 0.9, 0.1);
  Result<Graph> g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  PropagationEngine engine(*g);
  const std::vector<VertexId> s0 = {0};
  const std::vector<VertexId> s1 = {1};
  EXPECT_NEAR(AsMap(engine.Compute(s0, 0.0)).at(1), 0.9, 1e-6);
  EXPECT_NEAR(AsMap(engine.Compute(s1, 0.0)).at(0), 0.1, 1e-6);
}

TEST(PropagationTest, MultiSourceTakesMax) {
  // Seeds {0, 3} on a path: middle vertices get the better side.
  const Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}}, 0.5);
  PropagationEngine engine(g);
  const std::vector<VertexId> seeds = {0, 3};
  const auto cpp = AsMap(engine.Compute(seeds, 0.0));
  EXPECT_DOUBLE_EQ(cpp.at(1), 0.5);  // from 0, not 0.25 via 3
  EXPECT_DOUBLE_EQ(cpp.at(2), 0.5);  // from 3
}

TEST(PropagationTest, DuplicateSeedsIgnored) {
  const Graph g = MakeGraph(3, {{0, 1}, {1, 2}}, 0.5);
  PropagationEngine engine(g);
  const std::vector<VertexId> seeds = {0, 0, 0};
  const auto result = engine.Compute(seeds, 0.0);
  EXPECT_DOUBLE_EQ(result.score, 1.0 + 0.5 + 0.25);
}

TEST(PropagationTest, EngineReusableAcrossQueries) {
  const Graph g = MakeGraph(3, {{0, 1}, {1, 2}}, 0.5);
  PropagationEngine engine(g);
  const std::vector<VertexId> s0 = {0};
  const std::vector<VertexId> s2 = {2};
  const auto first = engine.Compute(s0, 0.0);
  const auto second = engine.Compute(s2, 0.0);
  // No stale state: both runs see a fresh world.
  EXPECT_DOUBLE_EQ(first.score, second.score);
}

TEST(PropagationTest, ComputeFromSourceMatchesSingleSeed) {
  const Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {0, 3}}, 0.6);
  PropagationEngine engine(g);
  const std::vector<VertexId> seeds = {0};
  const auto a = engine.Compute(seeds, 0.1);
  const auto b = engine.ComputeFromSource(0, 0.1);
  EXPECT_EQ(AsMap(a), AsMap(b));
}

// Property: upp from the engine equals exhaustive simple-path enumeration.
class UppPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UppPropertyTest, MatchesPathEnumeration) {
  ErdosRenyiOptions opts;
  opts.num_vertices = 9;  // path enumeration is exponential
  opts.edge_prob = 0.3;
  opts.seed = GetParam();
  opts.weights.min_weight = 0.3;
  opts.weights.max_weight = 0.9;
  Result<Graph> g = MakeErdosRenyi(opts);
  ASSERT_TRUE(g.ok());
  PropagationEngine engine(*g);
  for (VertexId s = 0; s < g->NumVertices(); ++s) {
    const auto cpp = AsMap(engine.ComputeFromSource(s, 0.0));
    for (VertexId t = 0; t < g->NumVertices(); ++t) {
      const double reference = ReferenceUpp(*g, s, t);
      const auto it = cpp.find(t);
      const double engine_val = it == cpp.end() ? 0.0 : it->second;
      EXPECT_NEAR(engine_val, reference, 1e-9) << s << "->" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UppPropertyTest, ::testing::Values(1, 2, 3, 4, 5, 6));

// Property: σ_θ is non-increasing in θ and gInf shrinks with θ.
class ThetaMonotonicityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ThetaMonotonicityTest, ScoreMonotoneInTheta) {
  SmallWorldOptions opts;
  opts.num_vertices = 100;
  opts.seed = GetParam();
  Result<Graph> g = MakeSmallWorld(opts);
  ASSERT_TRUE(g.ok());
  PropagationEngine engine(*g);
  const std::vector<VertexId> seeds = {0, 1, 2};
  double prev_score = std::numeric_limits<double>::infinity();
  std::size_t prev_size = std::numeric_limits<std::size_t>::max();
  for (double theta : {0.05, 0.1, 0.2, 0.3, 0.5}) {
    const auto result = engine.Compute(seeds, theta);
    EXPECT_LE(result.score, prev_score);
    EXPECT_LE(result.size(), prev_size);
    prev_score = result.score;
    prev_size = result.size();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThetaMonotonicityTest, ::testing::Values(1, 2, 3));

TEST(ScoresAtThresholdsTest, MatchesIndividualRuns) {
  SmallWorldOptions opts;
  opts.num_vertices = 80;
  opts.seed = 9;
  Result<Graph> g = MakeSmallWorld(opts);
  ASSERT_TRUE(g.ok());
  PropagationEngine engine(*g);
  const std::vector<VertexId> seeds = {3, 4};
  const std::vector<double> thetas = {0.1, 0.2, 0.3};
  const auto base = engine.Compute(seeds, 0.1);
  const auto scores = ScoresAtThresholds(base, thetas);
  for (std::size_t z = 0; z < thetas.size(); ++z) {
    const auto direct = engine.Compute(seeds, thetas[z]);
    EXPECT_NEAR(scores[z], direct.score, 1e-9) << "theta=" << thetas[z];
  }
}

TEST(ScoresAtThresholdsTest, EmptyCommunityGivesZeros) {
  InfluencedCommunity empty;
  const std::vector<double> thetas = {0.1, 0.2};
  const auto scores = ScoresAtThresholds(empty, thetas);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
  EXPECT_DOUBLE_EQ(scores[1], 0.0);
}

TEST(RestrictToThresholdTest, CanEmptyOut) {
  InfluencedCommunity c;
  c.vertices = {1, 2};
  c.cpp = {0.15, 0.12};
  c.score = 0.27;
  const auto restricted = RestrictToThreshold(c, 0.5);
  EXPECT_EQ(restricted.size(), 0u);
  EXPECT_DOUBLE_EQ(restricted.score, 0.0);
}

TEST(RestrictToThresholdTest, EquivalentToDirectRun) {
  SmallWorldOptions opts;
  opts.num_vertices = 80;
  opts.seed = 10;
  Result<Graph> g = MakeSmallWorld(opts);
  ASSERT_TRUE(g.ok());
  PropagationEngine engine(*g);
  const std::vector<VertexId> seeds = {5};
  const auto base = engine.Compute(seeds, 0.05);
  const auto restricted = RestrictToThreshold(base, 0.2);
  const auto direct = engine.Compute(seeds, 0.2);
  EXPECT_EQ(AsMap(restricted), AsMap(direct));
  EXPECT_NEAR(restricted.score, direct.score, 1e-12);
}

TEST(PropagationEnginePoolTest, ConcurrentLeasesComputeIdenticalResults) {
  // Chunked influence evaluation leans on the pool: N threads leasing
  // engines concurrently must each get bit-identical results to a private
  // engine, and the pool must grow only to peak concurrency.
  SmallWorldOptions gen;
  gen.num_vertices = 300;
  gen.seed = 5;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());

  PropagationEngine reference(*g);
  std::vector<InfluencedCommunity> expected;
  for (VertexId v = 0; v < 8; ++v) {
    expected.push_back(reference.ComputeFromSource(v, 0.2));
  }

  PropagationEnginePool pool(*g);
  constexpr int kThreads = 4;
  constexpr int kRounds = 5;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        PropagationEnginePool::Lease engine(&pool);
        for (VertexId v = 0; v < 8; ++v) {
          const InfluencedCommunity got = engine->ComputeFromSource(v, 0.2);
          if (got.vertices != expected[v].vertices ||
              got.cpp != expected[v].cpp || got.score != expected[v].score) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GE(pool.size(), 1u);
  EXPECT_LE(pool.size(), static_cast<std::size_t>(kThreads));
}

}  // namespace
}  // namespace topl

#include "engine/engine.h"

#include <cstdio>
#include <filesystem>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace topl {
namespace {

// Shared serving workload: one small-world graph plus reference detectors.
// Built once — the offline phase dominates this test binary's runtime.
class EngineTest : public ::testing::Test {
 protected:
  struct World {
    Graph graph;
    testing::BuiltIndex index;
    std::unique_ptr<Engine> engine;
    std::vector<Query> queries;
    std::vector<bool> diversified;  // per query: run through DTopL?
  };

  static World* world_;

  // Graph is move-only; engines take ownership of theirs. The generator is
  // deterministic per seed, so regenerating yields a bit-identical graph.
  static Graph MakeWorldGraph() {
    SmallWorldOptions gen;
    gen.num_vertices = 400;
    gen.seed = 17;
    gen.keywords.domain_size = 30;
    gen.keywords.keywords_per_vertex = 3;
    Result<Graph> g = MakeSmallWorld(gen);
    EXPECT_TRUE(g.ok()) << g.status().ToString();
    return std::move(g).value();
  }

  static void SetUpTestSuite() {
    world_ = new World();
    world_->graph = MakeWorldGraph();

    PrecomputeOptions pre_opts;
    pre_opts.r_max = 2;
    world_->index = testing::BuildIndexFor(world_->graph, pre_opts);

    EngineOptions engine_opts;
    engine_opts.num_threads = 4;
    // The engine gets its own copy of the offline phase so the reference
    // detectors below keep using `index` independently.
    Result<std::unique_ptr<Engine>> engine =
        MakeEngineFromSharedIndex(engine_opts);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    world_->engine = std::move(engine).value();

    // A mixed query workload with population-weighted keywords (uniform
    // domain draws on a 30-keyword domain often match nobody).
    for (std::uint64_t seed = 1; seed <= 9; ++seed) {
      Query q;
      Rng rng(seed);
      std::vector<KeywordId> kws;
      while (kws.size() < 3) {
        const VertexId v =
            static_cast<VertexId>(rng.NextBounded(world_->graph.NumVertices()));
        const auto vertex_kws = world_->graph.Keywords(v);
        if (vertex_kws.empty()) continue;
        const KeywordId w = vertex_kws[rng.NextBounded(vertex_kws.size())];
        if (std::find(kws.begin(), kws.end(), w) == kws.end()) kws.push_back(w);
      }
      std::sort(kws.begin(), kws.end());
      q.keywords = std::move(kws);
      q.k = 3 + static_cast<std::uint32_t>(seed % 2);  // k in {3, 4}
      q.radius = 1 + static_cast<std::uint32_t>(seed % 2);
      q.theta = 0.2;
      q.top_l = 4;
      world_->queries.push_back(std::move(q));
      world_->diversified.push_back(seed % 3 == 0);
    }
  }

  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }

  /// Fresh Engine over a copy of the shared precomputed data (tree rebuilt
  /// so its back-pointer targets the copy) and a regenerated graph.
  static Result<std::unique_ptr<Engine>> MakeEngineFromSharedIndex(
      const EngineOptions& options) {
    auto pre_copy = std::make_unique<PrecomputedData>(world_->index.pre());
    Result<TreeIndex> tree =
        TreeIndex::Build(world_->graph, *pre_copy, TreeIndexOptions());
    if (!tree.ok()) return tree.status();
    return Engine::Create(MakeWorldGraph(), std::move(pre_copy),
                          std::move(tree).value(), options);
  }

  static DTopLOptions DiversifiedOptions() {
    DTopLOptions options;
    options.n_factor = 3;
    return options;
  }

  // Engine graph/index vs reference: the engine serves from an identical
  // copy of the offline phase, so answers must match *exactly* — same
  // communities, same member lists, bit-identical scores.
  static void ExpectSameCommunities(const std::vector<CommunityResult>& actual,
                                    const std::vector<CommunityResult>& expected) {
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].community.center, expected[i].community.center) << i;
      EXPECT_EQ(actual[i].community.vertices, expected[i].community.vertices) << i;
      EXPECT_EQ(actual[i].influence.vertices, expected[i].influence.vertices) << i;
      EXPECT_EQ(actual[i].influence.cpp, expected[i].influence.cpp) << i;
      EXPECT_EQ(actual[i].score(), expected[i].score()) << i;
    }
  }
};

EngineTest::World* EngineTest::world_ = nullptr;

TEST_F(EngineTest, SearchMatchesSingleThreadedDetector) {
  TopLDetector reference(world_->graph, world_->index.pre(), world_->index.tree);
  for (const Query& query : world_->queries) {
    Result<TopLResult> expected = reference.Search(query);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    Result<TopLResult> actual = world_->engine->Search(query);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    ExpectSameCommunities(actual->communities, expected->communities);
    // The pruning trace must match too: same index, same traversal.
    EXPECT_EQ(actual->stats.heap_pops, expected->stats.heap_pops);
    EXPECT_EQ(actual->stats.TotalPruned(), expected->stats.TotalPruned());
  }
}

TEST_F(EngineTest, SearchDiversifiedMatchesSingleThreadedDetector) {
  DTopLDetector reference(world_->graph, world_->index.pre(), world_->index.tree);
  for (const Query& query : world_->queries) {
    Result<DTopLResult> expected = reference.Search(query, DiversifiedOptions());
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    Result<DTopLResult> actual =
        world_->engine->SearchDiversified(query, DiversifiedOptions());
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    ExpectSameCommunities(actual->communities, expected->communities);
    EXPECT_EQ(actual->diversity_score, expected->diversity_score);
  }
}

TEST_F(EngineTest, ConcurrentMixedQueriesMatchSingleThreaded) {
  // Reference answers, computed single-threaded.
  TopLDetector topl_ref(world_->graph, world_->index.pre(), world_->index.tree);
  DTopLDetector dtopl_ref(world_->graph, world_->index.pre(), world_->index.tree);
  std::vector<TopLResult> expected_topl(world_->queries.size());
  std::vector<DTopLResult> expected_dtopl(world_->queries.size());
  for (std::size_t i = 0; i < world_->queries.size(); ++i) {
    if (world_->diversified[i]) {
      Result<DTopLResult> r =
          dtopl_ref.Search(world_->queries[i], DiversifiedOptions());
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      expected_dtopl[i] = std::move(r).value();
    } else {
      Result<TopLResult> r = topl_ref.Search(world_->queries[i]);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      expected_topl[i] = std::move(r).value();
    }
  }

  // N threads, each sweeping the whole mixed workload M times against the
  // one shared engine, all comparing against the single-threaded answers.
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRounds = 3;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        // Stagger start index per thread so threads hit different queries
        // (and thus differently-sized scratch) at the same time.
        for (std::size_t j = 0; j < world_->queries.size(); ++j) {
          const std::size_t i = (j + t) % world_->queries.size();
          const std::vector<CommunityResult>* expected;
          std::vector<CommunityResult> actual;
          if (world_->diversified[i]) {
            Result<DTopLResult> r = world_->engine->SearchDiversified(
                world_->queries[i], DiversifiedOptions());
            if (!r.ok()) {
              failures[t] = r.status().ToString();
              return;
            }
            actual = std::move(r).value().communities;
            expected = &expected_dtopl[i].communities;
          } else {
            Result<TopLResult> r = world_->engine->Search(world_->queries[i]);
            if (!r.ok()) {
              failures[t] = r.status().ToString();
              return;
            }
            actual = std::move(r).value().communities;
            expected = &expected_topl[i].communities;
          }
          if (actual.size() != expected->size()) {
            failures[t] = "result size mismatch on query " + std::to_string(i);
            return;
          }
          for (std::size_t c = 0; c < actual.size(); ++c) {
            if (actual[c].community.center != (*expected)[c].community.center ||
                actual[c].community.vertices != (*expected)[c].community.vertices ||
                actual[c].influence.vertices != (*expected)[c].influence.vertices ||
                actual[c].influence.cpp != (*expected)[c].influence.cpp) {
              failures[t] = "community mismatch on query " + std::to_string(i);
              return;
            }
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[t].empty()) << "thread " << t << ": " << failures[t];
  }
  // The context pool grew to at most the peak concurrency, not per query.
  EXPECT_GE(world_->engine->pooled_contexts(), 1u);
  EXPECT_LE(world_->engine->pooled_contexts(),
            kThreads + world_->engine->num_threads());
}

TEST_F(EngineTest, SearchBatchMatchesPerSlotSearch) {
  std::vector<Result<TopLResult>> batch =
      world_->engine->SearchBatch(world_->queries);
  ASSERT_EQ(batch.size(), world_->queries.size());
  TopLDetector reference(world_->graph, world_->index.pre(), world_->index.tree);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << batch[i].status().ToString();
    Result<TopLResult> expected = reference.Search(world_->queries[i]);
    ASSERT_TRUE(expected.ok());
    ExpectSameCommunities(batch[i]->communities, expected->communities);
  }
}

TEST_F(EngineTest, SubmitResolvesFuturesToSameAnswers) {
  std::vector<std::future<Result<TopLResult>>> futures;
  for (const Query& query : world_->queries) {
    futures.push_back(world_->engine->Submit(query));
  }
  std::future<Result<DTopLResult>> diversified = world_->engine->SubmitDiversified(
      world_->queries.front(), DiversifiedOptions());

  TopLDetector reference(world_->graph, world_->index.pre(), world_->index.tree);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    Result<TopLResult> actual = futures[i].get();
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    Result<TopLResult> expected = reference.Search(world_->queries[i]);
    ASSERT_TRUE(expected.ok());
    ExpectSameCommunities(actual->communities, expected->communities);
  }
  Result<DTopLResult> dtopl = diversified.get();
  ASSERT_TRUE(dtopl.ok()) << dtopl.status().ToString();
}

TEST_F(EngineTest, StatsAggregateAcrossQueries) {
  // A fresh engine so counters start from zero.
  EngineOptions options;
  options.num_threads = 2;
  Result<std::unique_ptr<Engine>> engine = MakeEngineFromSharedIndex(options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  QueryStats expected_sum;
  for (const Query& query : world_->queries) {
    Result<TopLResult> r = (*engine)->Search(query);
    ASSERT_TRUE(r.ok());
    expected_sum += r->stats;
  }
  Result<DTopLResult> d =
      (*engine)->SearchDiversified(world_->queries.front(), DiversifiedOptions());
  ASSERT_TRUE(d.ok());
  expected_sum += d->candidate_stats;

  // One malformed query (radius beyond r_max) must count as failed.
  Query bad = world_->queries.front();
  bad.radius = 99;
  Result<TopLResult> failed = (*engine)->Search(bad);
  EXPECT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsInvalidArgument());

  (*engine)->SearchBatch(world_->queries);

  const EngineStats stats = (*engine)->Stats();
  EXPECT_EQ(stats.topl_queries, 2 * world_->queries.size() + 1);
  EXPECT_EQ(stats.dtopl_queries, 1u);
  EXPECT_EQ(stats.queries_total, stats.topl_queries + stats.dtopl_queries);
  EXPECT_EQ(stats.failed_queries, 1u);
  EXPECT_EQ(stats.batches, 1u);
  // The deterministic counters doubled exactly (batch reran the same list).
  EXPECT_EQ(stats.query_stats.heap_pops,
            2 * expected_sum.heap_pops - d->candidate_stats.heap_pops);
  EXPECT_LE(stats.p50_latency_seconds, stats.p99_latency_seconds);
  EXPECT_LE(stats.p99_latency_seconds, stats.p999_latency_seconds);
  EXPECT_LE(stats.p999_latency_seconds, stats.max_latency_seconds);
  EXPECT_GT(stats.query_stats.elapsed_seconds, 0.0);
}

TEST_F(EngineTest, QueryStatsMergeHelper) {
  QueryStats a;
  a.heap_pops = 3;
  a.pruned_keyword = 1;
  a.pruned_termination = 2;
  a.candidates_refined = 4;
  a.elapsed_seconds = 0.25;
  a.triangles_inspected = 10;
  QueryStats b;
  b.heap_pops = 5;
  b.pruned_support = 7;
  b.communities_found = 1;
  b.triangles_inspected = 30;
  b.support_recomputes_avoided = 2;
  b.elapsed_seconds = 0.5;
  a += b;
  EXPECT_EQ(a.heap_pops, 8u);
  EXPECT_EQ(a.pruned_keyword, 1u);
  EXPECT_EQ(a.pruned_support, 7u);
  EXPECT_EQ(a.pruned_termination, 2u);
  EXPECT_EQ(a.TotalPruned(), 10u);
  EXPECT_EQ(a.candidates_refined, 4u);
  EXPECT_EQ(a.communities_found, 1u);
  EXPECT_EQ(a.triangles_inspected, 40u);
  EXPECT_EQ(a.support_recomputes_avoided, 2u);
  EXPECT_DOUBLE_EQ(a.elapsed_seconds, 0.75);
}

TEST_F(EngineTest, SubstrateCountersReachEngineStats) {
  Result<std::unique_ptr<Engine>> engine =
      MakeEngineFromSharedIndex(EngineOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  std::uint64_t triangles = 0;
  for (const Query& q : world_->queries) {
    Result<TopLResult> result = (*engine)->Search(q);
    ASSERT_TRUE(result.ok());
    triangles += result->stats.triangles_inspected;
    if (result->stats.communities_found > 0) {
      // Extracting a community walks its triangles on the (default)
      // incremental path, so this query must have metered some.
      EXPECT_GT(result->stats.triangles_inspected, 0u);
    }
  }
  ASSERT_GT(triangles, 0u);  // the workload finds communities
  // The per-query counters must fold into the engine aggregate.
  EXPECT_EQ((*engine)->Stats().query_stats.triangles_inspected, triangles);
}

TEST_F(EngineTest, CreateRejectsMismatchedParts) {
  // pre built over a different (smaller) graph.
  Graph other = testing::MakeClique(6);
  Result<PrecomputedData> other_pre =
      PrecomputedData::Build(other, PrecomputeOptions());
  ASSERT_TRUE(other_pre.ok());
  auto other_owned = std::make_unique<PrecomputedData>(std::move(other_pre).value());
  Result<TreeIndex> other_tree =
      TreeIndex::Build(other, *other_owned, TreeIndexOptions());
  ASSERT_TRUE(other_tree.ok());

  Graph graph_copy = testing::MakeClique(6);
  Result<std::unique_ptr<Engine>> null_pre = Engine::Create(
      testing::MakeClique(6), nullptr, TreeIndex(), EngineOptions());
  EXPECT_FALSE(null_pre.ok());

  // Tree built over a different PrecomputedData instance than the one handed in.
  auto second_pre = std::make_unique<PrecomputedData>(*other_owned);
  Result<std::unique_ptr<Engine>> mismatched =
      Engine::Create(std::move(graph_copy), std::move(second_pre),
                     std::move(other_tree).value(), EngineOptions());
  EXPECT_FALSE(mismatched.ok());
  EXPECT_TRUE(mismatched.status().IsInvalidArgument());
}

TEST_F(EngineTest, OpenLoadsBuildsAndPersists) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "topl_engine_test";
  std::filesystem::create_directories(dir);
  const std::string graph_path = (dir / "graph.bin").string();
  const std::string index_path = (dir / "index.bin").string();
  std::filesystem::remove(index_path);
  ASSERT_TRUE(WriteGraphBinary(world_->graph, graph_path).ok());

  EngineOptions options;
  options.graph_path = graph_path;
  options.index_path = index_path;
  options.precompute.r_max = 2;
  options.num_threads = 2;

  // First Open: no index file -> built in-process and persisted.
  Result<std::unique_ptr<Engine>> built = Engine::Open(options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_TRUE(std::filesystem::exists(index_path));

  // Second Open: loads the persisted index; answers match the first engine.
  Result<std::unique_ptr<Engine>> loaded = Engine::Open(options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (const Query& query : world_->queries) {
    Result<TopLResult> a = (*built)->Search(query);
    Result<TopLResult> b = (*loaded)->Search(query);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectSameCommunities(b->communities, a->communities);
  }

  // Refusing to build when asked not to.
  std::filesystem::remove(index_path);
  EngineOptions strict = options;
  strict.build_index_if_missing = false;
  Result<std::unique_ptr<Engine>> missing = Engine::Open(strict);
  EXPECT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound());

  // Missing graph path is an InvalidArgument, not a crash.
  Result<std::unique_ptr<Engine>> no_graph = Engine::Open(EngineOptions());
  EXPECT_FALSE(no_graph.ok());

  std::filesystem::remove_all(dir);
}

TEST_F(EngineTest, ProgressiveMatchesPlainSearch) {
  // The progressive/parallel path must return byte-identical answers to the
  // plain sequential path when it runs to completion.
  for (const Query& query : world_->queries) {
    Result<TopLResult> plain = world_->engine->Search(query);
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();
    ProgressiveOptions options;
    options.chunk_size = 4;
    int updates = 0;
    Result<TopLResult> progressive = world_->engine->SearchProgressive(
        query, options, [&](const ProgressiveUpdate&) {
          ++updates;
          return true;
        });
    ASSERT_TRUE(progressive.ok()) << progressive.status().ToString();
    EXPECT_FALSE(progressive->truncated);
    ExpectSameCommunities(progressive->communities, plain->communities);
    if (!plain->communities.empty()) EXPECT_GE(updates, 1);
  }
}

TEST_F(EngineTest, ProgressiveDiversifiedMatchesPlainSearch) {
  for (const Query& query : world_->queries) {
    Result<DTopLResult> plain =
        world_->engine->SearchDiversified(query, DiversifiedOptions());
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();
    Result<DTopLResult> progressive =
        world_->engine->SearchDiversifiedProgressive(query, DiversifiedOptions());
    ASSERT_TRUE(progressive.ok()) << progressive.status().ToString();
    EXPECT_FALSE(progressive->truncated);
    ExpectSameCommunities(progressive->communities, plain->communities);
    EXPECT_EQ(progressive->diversity_score, plain->diversity_score);
  }
}

TEST_F(EngineTest, ProgressiveDiversifiedHonorsPruningToggles) {
  // The progressive path must take its pruning toggles from
  // DTopLOptions::topl_options, exactly like SearchDiversified — not from
  // ProgressiveOptions::query. Keyword pruning fires on every workload
  // query, so with it disabled (and parallelism off, making the traversal
  // identical to the plain path) the refinement counters must match the
  // plain path's non-default-toggle run exactly — and visibly exceed the
  // default-toggle run.
  DTopLOptions no_keyword_pruning = DiversifiedOptions();
  no_keyword_pruning.topl_options.use_keyword_pruning = false;
  ProgressiveOptions sequential;
  sequential.parallel = false;
  for (const Query& query : world_->queries) {
    Result<DTopLResult> plain =
        world_->engine->SearchDiversified(query, no_keyword_pruning);
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();
    Result<DTopLResult> progressive =
        world_->engine->SearchDiversifiedProgressive(query, no_keyword_pruning,
                                                     sequential);
    ASSERT_TRUE(progressive.ok()) << progressive.status().ToString();
    ExpectSameCommunities(progressive->communities, plain->communities);
    EXPECT_EQ(progressive->candidate_stats.candidates_refined,
              plain->candidate_stats.candidates_refined);
    EXPECT_EQ(progressive->candidate_stats.pruned_keyword, 0u);

    Result<DTopLResult> defaults = world_->engine->SearchDiversifiedProgressive(
        query, DiversifiedOptions(), sequential);
    ASSERT_TRUE(defaults.ok());
    EXPECT_GE(progressive->candidate_stats.candidates_refined,
              defaults->candidate_stats.candidates_refined);
  }
}

TEST_F(EngineTest, DeadlineExpiryReturnsTruncatedBestSoFar) {
  ProgressiveOptions options;
  options.deadline_seconds = 1e-12;  // expires at the first checkpoint
  Result<TopLResult> result =
      world_->engine->SearchProgressive(world_->queries.front(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->truncated);
  // Upper bound covers everything the truncated run missed.
  Result<TopLResult> exact = world_->engine->Search(world_->queries.front());
  ASSERT_TRUE(exact.ok());
  for (const CommunityResult& community : exact->communities) {
    bool returned = false;
    for (const CommunityResult& got : result->communities) {
      if (got.community.center == community.community.center) returned = true;
    }
    if (!returned) {
      EXPECT_LE(community.score(), result->score_upper_bound);
    }
  }
}

TEST_F(EngineTest, CancellationBeforeFirstResult) {
  CancelToken cancel = CancelToken::Create();
  cancel.Cancel();
  ProgressiveOptions options;
  options.cancel = cancel;
  Result<TopLResult> result =
      world_->engine->SearchProgressive(world_->queries.front(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->truncated);
  EXPECT_TRUE(result->communities.empty());
  EXPECT_EQ(result->stats.candidates_refined, 0u);
}

TEST_F(EngineTest, ConcurrentCancellationIsClean) {
  // One thread cancels while others run the same token's queries: exercises
  // the cancel-flag and chunk-skip paths under TSan.
  CancelToken cancel = CancelToken::Create();
  ProgressiveOptions options;
  options.cancel = cancel;
  options.chunk_size = 1;
  constexpr std::size_t kThreads = 3;
  std::vector<std::thread> threads;
  std::atomic<int> truncated{0};
  std::atomic<int> failures{0};
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < world_->queries.size(); ++i) {
        Result<TopLResult> r = world_->engine->SearchProgressive(
            world_->queries[(i + t) % world_->queries.size()], options);
        if (!r.ok()) {
          failures.fetch_add(1);
          return;
        }
        if (r->truncated) truncated.fetch_add(1);
      }
    });
  }
  cancel.Cancel();
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  // Every query issued after the cancel must have come back truncated; the
  // race with in-flight ones is inherently timing-dependent, so only the
  // absence of crashes/races and of failures is asserted beyond that.
  EXPECT_GE(truncated.load(), 0);
}

TEST_F(EngineTest, StatsTagLatenciesByQueryKind) {
  // Fresh engine: single, batch, diversified, and progressive queries must
  // land in their own latency histograms, not one mixed pool.
  EngineOptions options;
  options.num_threads = 2;
  Result<std::unique_ptr<Engine>> engine = MakeEngineFromSharedIndex(options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  ASSERT_TRUE((*engine)->Search(world_->queries[0]).ok());
  ASSERT_TRUE((*engine)->Search(world_->queries[1]).ok());
  (*engine)->SearchBatch(world_->queries);
  ASSERT_TRUE(
      (*engine)->SearchDiversified(world_->queries[0], DiversifiedOptions()).ok());
  ProgressiveOptions prog;
  prog.deadline_seconds = 1e-12;
  ASSERT_TRUE((*engine)->SearchProgressive(world_->queries[0], prog).ok());

  const EngineStats stats = (*engine)->Stats();
  EXPECT_EQ(stats.ForKind(QueryKind::kSearch).count, 2u);
  EXPECT_EQ(stats.ForKind(QueryKind::kBatch).count, world_->queries.size());
  EXPECT_EQ(stats.ForKind(QueryKind::kDiversified).count, 1u);
  EXPECT_EQ(stats.ForKind(QueryKind::kProgressive).count, 1u);
  EXPECT_EQ(stats.progressive_queries, 1u);
  EXPECT_EQ(stats.truncated_queries, 1u);  // the zero-deadline progressive one
  // Per-kind percentile invariants hold independently.
  for (std::size_t k = 0; k < kNumQueryKinds; ++k) {
    const LatencySummary& summary = stats.latency[k];
    EXPECT_LE(summary.p50_seconds, summary.p99_seconds);
    EXPECT_LE(summary.p99_seconds, summary.p999_seconds);
    EXPECT_LE(summary.p999_seconds, summary.max_seconds);
  }
  // The legacy aggregate view still covers every sample.
  std::uint64_t total = 0;
  for (std::size_t k = 0; k < kNumQueryKinds; ++k) total += stats.latency[k].count;
  EXPECT_EQ(total, stats.queries_total);
  EXPECT_LE(stats.p50_latency_seconds, stats.p99_latency_seconds);
  EXPECT_LE(stats.p99_latency_seconds, stats.p999_latency_seconds);
  EXPECT_LE(stats.p999_latency_seconds, stats.max_latency_seconds);
}

TEST_F(EngineTest, SequentialQueriesReuseOneContext) {
  Result<std::unique_ptr<Engine>> engine =
      MakeEngineFromSharedIndex(EngineOptions());
  ASSERT_TRUE(engine.ok());
  for (int i = 0; i < 5; ++i) {
    Result<TopLResult> r = (*engine)->Search(world_->queries.front());
    ASSERT_TRUE(r.ok());
  }
  EXPECT_EQ((*engine)->pooled_contexts(), 1u);
}

}  // namespace
}  // namespace topl

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/binary_io.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace topl {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("topl_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, SnapRoundTripStructure) {
  const Graph g = testing::MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}});
  const std::string path = Path("ring.txt");
  ASSERT_TRUE(WriteSnapEdgeList(g, path).ok());

  EdgeListLoadOptions opts;
  opts.assign_attributes = false;
  Result<Graph> loaded = LoadSnapEdgeList(path, opts);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumVertices(), 5u);
  EXPECT_EQ(loaded->NumEdges(), 5u);
}

TEST_F(IoTest, SnapParsesCommentsAndDuplicates) {
  const std::string path = Path("snap.txt");
  {
    std::ofstream out(path);
    out << "# Undirected graph: example\n";
    out << "# Nodes: 3 Edges: 2\n";
    out << "10\t20\n";
    out << "20\t10\n";   // duplicate in reverse orientation
    out << "20 30\n";    // space-separated
    out << "30\t30\n";   // self loop: dropped
    out << "\n";
  }
  EdgeListLoadOptions opts;
  opts.assign_attributes = false;
  Result<Graph> g = LoadSnapEdgeList(path, opts);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumVertices(), 3u);
  EXPECT_EQ(g->NumEdges(), 2u);
}

TEST_F(IoTest, SnapRejectsMalformedLine) {
  const std::string path = Path("bad.txt");
  {
    std::ofstream out(path);
    out << "1\tnotanumber\n";
  }
  Result<Graph> g = LoadSnapEdgeList(path, EdgeListLoadOptions());
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsCorruption());
}

TEST_F(IoTest, SnapMissingFileIsIOError) {
  Result<Graph> g = LoadSnapEdgeList(Path("nope.txt"), EdgeListLoadOptions());
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsIOError());
}

TEST_F(IoTest, SnapAssignsAttributes) {
  const std::string path = Path("attrs.txt");
  {
    std::ofstream out(path);
    out << "0\t1\n1\t2\n";
  }
  EdgeListLoadOptions opts;
  opts.assign_attributes = true;
  opts.keywords.keywords_per_vertex = 2;
  opts.keywords.domain_size = 10;
  Result<Graph> g = LoadSnapEdgeList(path, opts);
  ASSERT_TRUE(g.ok());
  for (VertexId v = 0; v < g->NumVertices(); ++v) {
    EXPECT_EQ(g->Keywords(v).size(), 2u);
    for (const Graph::Arc& arc : g->Neighbors(v)) {
      EXPECT_GE(arc.prob, 0.5f);
      EXPECT_LT(arc.prob, 0.6f + 1e-6f);
    }
  }
}

TEST_F(IoTest, SnapLargestComponentRestriction) {
  const std::string path = Path("two_comps.txt");
  {
    std::ofstream out(path);
    // Component A: triangle {0,1,2}; component B: edge {7,8}.
    out << "0 1\n1 2\n0 2\n7 8\n";
  }
  EdgeListLoadOptions opts;
  opts.assign_attributes = false;
  opts.restrict_to_largest_component = true;
  Result<Graph> g = LoadSnapEdgeList(path, opts);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 3u);
  EXPECT_EQ(g->NumEdges(), 3u);
}

TEST_F(IoTest, BinaryRoundTripExact) {
  SmallWorldOptions gen;
  gen.num_vertices = 120;
  gen.seed = 3;
  Result<Graph> original = MakeSmallWorld(gen);
  ASSERT_TRUE(original.ok());

  const std::string path = Path("graph.bin");
  ASSERT_TRUE(WriteGraphBinary(*original, path).ok());
  Result<Graph> loaded = ReadGraphBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->NumVertices(), original->NumVertices());
  ASSERT_EQ(loaded->NumEdges(), original->NumEdges());
  for (VertexId v = 0; v < original->NumVertices(); ++v) {
    const auto a = original->Neighbors(v);
    const auto b = loaded->Neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].to, b[i].to);
      EXPECT_FLOAT_EQ(a[i].prob, b[i].prob);
    }
    const auto ka = original->Keywords(v);
    const auto kb = loaded->Keywords(v);
    ASSERT_EQ(ka.size(), kb.size());
    for (std::size_t i = 0; i < ka.size(); ++i) EXPECT_EQ(ka[i], kb[i]);
  }
}

TEST_F(IoTest, BinaryRejectsBadMagic) {
  const std::string path = Path("junk.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTAGRAPHFILE";
  }
  Result<Graph> g = ReadGraphBinary(path);
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsCorruption());
}

TEST_F(IoTest, BinaryRejectsTruncation) {
  const Graph g = testing::MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  const std::string path = Path("trunc.bin");
  ASSERT_TRUE(WriteGraphBinary(g, path).ok());
  // Chop the file.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  Result<Graph> loaded = ReadGraphBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

}  // namespace
}  // namespace topl

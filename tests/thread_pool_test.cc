#include "common/thread_pool.h"

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"

namespace topl {
namespace {

TEST(ThreadPoolTest, ZeroThreadsDefaultsToHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(0, n, [&](std::size_t i) { hits[i].fetch_add(1); },
                   /*grain=*/7);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, [&](std::size_t) { calls.fetch_add(1); });
  pool.ParallelFor(7, 3, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, NonZeroBegin) {
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  pool.ParallelFor(100, 200, [&](std::size_t i) { sum.fetch_add(i); },
                   /*grain=*/9);
  std::size_t expect = 0;
  for (std::size_t i = 100; i < 200; ++i) expect += i;
  EXPECT_EQ(sum.load(), expect);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.ParallelFor(0, 5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, WorkerIdsWithinRange) {
  ThreadPool pool(4);
  std::atomic<bool> bad{false};
  pool.ParallelForWithWorker(
      0, 5000,
      [&](std::size_t worker, std::size_t) {
        if (worker >= pool.num_threads()) bad.store(true);
      },
      /*grain=*/16);
  EXPECT_FALSE(bad.load());
}

TEST(ThreadPoolTest, TaskGroupRunsAllSubtasks) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  ThreadPool::TaskGroup group(&pool);
  for (std::uint64_t i = 1; i <= 100; ++i) {
    group.Spawn([&sum, i] { sum.fetch_add(i); });
  }
  group.Wait();
  EXPECT_EQ(sum.load(), 5050u);
}

TEST(ThreadPoolTest, TaskGroupSingleThreadedPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;  // no synchronization: everything runs on this thread
  ThreadPool::TaskGroup group(&pool);
  for (int i = 0; i < 5; ++i) {
    group.Spawn([&order, i] { order.push_back(i); });
  }
  group.Wait();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, TaskGroupReusableAcrossWaitRounds) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  ThreadPool::TaskGroup group(&pool);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) group.Spawn([&count] { count.fetch_add(1); });
    group.Wait();
    EXPECT_EQ(count.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, TaskGroupNestedFanOutFromSubmitDoesNotDeadlock) {
  // Saturate a tiny pool with Submit tasks that each fan out a nested
  // TaskGroup on the *same* pool. Every queue worker is occupied by an outer
  // task, so nested subtasks can only make progress through the help-first
  // join — if Wait() merely blocked, this test would hang.
  ThreadPool pool(2);
  std::atomic<std::uint64_t> nested_sum{0};
  std::vector<std::future<void>> outer;
  for (int t = 0; t < 8; ++t) {
    outer.push_back(pool.Submit([&pool, &nested_sum] {
      ThreadPool::TaskGroup group(&pool);
      for (int i = 0; i < 20; ++i) {
        group.Spawn([&nested_sum] { nested_sum.fetch_add(1); });
      }
      group.Wait();
    }));
  }
  for (auto& f : outer) f.get();
  EXPECT_EQ(nested_sum.load(), 8u * 20u);
}

TEST(ThreadPoolTest, TaskGroupPropagatesExceptions) {
  ThreadPool pool(2);
  ThreadPool::TaskGroup group(&pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    group.Spawn([&ran, i] {
      ran.fetch_add(1);
      if (i == 3) throw std::runtime_error("boom");
    });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 10);  // one failure never cancels siblings
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrowsTypedError) {
  ThreadPool pool(2);
  // Warm the lazy queue workers and prove normal service first.
  EXPECT_EQ(pool.Submit([] { return 41 + 1; }).get(), 42);

  pool.Shutdown();
  EXPECT_TRUE(pool.is_shutdown());
  pool.Shutdown();  // idempotent
  EXPECT_TRUE(pool.is_shutdown());

  std::atomic<bool> ran{false};
  std::future<void> rejected = pool.Submit([&ran] { ran.store(true); });
  // The rejected task never runs; its future resolves (never hangs) to the
  // documented typed error.
  try {
    rejected.get();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "ThreadPool is shut down");
  }
  EXPECT_FALSE(ran.load());
}

TEST(ThreadPoolTest, ShutdownDrainsAlreadyQueuedTasks) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([&done] { done.fetch_add(1); }));
  }
  pool.Shutdown();  // runs everything already accepted, then joins
  for (auto& f : futures) f.get();  // none throws: all were accepted
  EXPECT_EQ(done.load(), 16);
  EXPECT_EQ(pool.PendingTasks(), 0u);
}

TEST(ThreadPoolTest, ParallelForStillWorksAfterShutdown) {
  // Shutdown only closes the Submit queue; the blocking data-parallel mode
  // spawns per-call workers and keeps functioning (Engine::Shutdown relies
  // on this ordering independence).
  ThreadPool pool(3);
  pool.Shutdown();
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 100, [&](std::size_t) { calls.fetch_add(1); },
                   /*grain=*/8);
  EXPECT_EQ(calls.load(), 100);
}

TEST(ThreadPoolTest, WorkerScratchIsolation) {
  // Per-worker accumulators must see a consistent view without locks.
  ThreadPool pool(4);
  std::vector<std::uint64_t> per_worker(pool.num_threads(), 0);
  const std::size_t n = 20000;
  pool.ParallelForWithWorker(
      0, n, [&](std::size_t worker, std::size_t i) { per_worker[worker] += i; },
      /*grain=*/13);
  const std::uint64_t total =
      std::accumulate(per_worker.begin(), per_worker.end(), std::uint64_t{0});
  EXPECT_EQ(total, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

}  // namespace
}  // namespace topl

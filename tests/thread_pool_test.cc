#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"

namespace topl {
namespace {

TEST(ThreadPoolTest, ZeroThreadsDefaultsToHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(0, n, [&](std::size_t i) { hits[i].fetch_add(1); },
                   /*grain=*/7);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, [&](std::size_t) { calls.fetch_add(1); });
  pool.ParallelFor(7, 3, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, NonZeroBegin) {
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  pool.ParallelFor(100, 200, [&](std::size_t i) { sum.fetch_add(i); },
                   /*grain=*/9);
  std::size_t expect = 0;
  for (std::size_t i = 100; i < 200; ++i) expect += i;
  EXPECT_EQ(sum.load(), expect);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.ParallelFor(0, 5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, WorkerIdsWithinRange) {
  ThreadPool pool(4);
  std::atomic<bool> bad{false};
  pool.ParallelForWithWorker(
      0, 5000,
      [&](std::size_t worker, std::size_t) {
        if (worker >= pool.num_threads()) bad.store(true);
      },
      /*grain=*/16);
  EXPECT_FALSE(bad.load());
}

TEST(ThreadPoolTest, WorkerScratchIsolation) {
  // Per-worker accumulators must see a consistent view without locks.
  ThreadPool pool(4);
  std::vector<std::uint64_t> per_worker(pool.num_threads(), 0);
  const std::size_t n = 20000;
  pool.ParallelForWithWorker(
      0, n, [&](std::size_t worker, std::size_t i) { per_worker[worker] += i; },
      /*grain=*/13);
  const std::uint64_t total =
      std::accumulate(per_worker.begin(), per_worker.end(), std::uint64_t{0});
  EXPECT_EQ(total, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

}  // namespace
}  // namespace topl

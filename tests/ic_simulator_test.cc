#include "influence/ic_simulator.h"

#include <map>

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace topl {
namespace {

using testing::MakeGraph;

std::map<VertexId, double> AsMap(const InfluencedCommunity& c) {
  std::map<VertexId, double> out;
  for (std::size_t i = 0; i < c.size(); ++i) out[c.vertices[i]] = c.cpp[i];
  return out;
}

TEST(IcSimulatorTest, SeedsAlwaysActive) {
  const Graph g = MakeGraph(3, {{0, 1}, {1, 2}}, 0.5);
  IcSimulator sim(g);
  IcSimulator::Options options;
  options.num_rounds = 200;
  const std::vector<VertexId> seeds = {0, 2};
  const auto est = AsMap(sim.EstimateSpread(seeds, options));
  EXPECT_DOUBLE_EQ(est.at(0), 1.0);
  EXPECT_DOUBLE_EQ(est.at(2), 1.0);
}

TEST(IcSimulatorTest, SingleEdgeMatchesProbability) {
  const Graph g = MakeGraph(2, {{0, 1}}, 0.5);
  IcSimulator sim(g);
  IcSimulator::Options options;
  options.num_rounds = 20000;
  const std::vector<VertexId> seeds = {0};
  const auto est = AsMap(sim.EstimateSpread(seeds, options));
  EXPECT_NEAR(est.at(1), 0.5, 0.02);  // ~4 standard errors
}

TEST(IcSimulatorTest, TwoDisjointPathsUnionProbability) {
  // 0 -> 3 via two disjoint 1-hop relays with p = 0.5 per arc: IC activates
  // 3 with probability p^2 + p^2 - p^4 = 0.4375; MIA would report only the
  // best single path, 0.25.
  GraphBuilder b(4);
  b.AddEdge(0, 1, 0.5);
  b.AddEdge(1, 3, 0.5);
  b.AddEdge(0, 2, 0.5);
  b.AddEdge(2, 3, 0.5);
  Result<Graph> g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  IcSimulator sim(*g);
  IcSimulator::Options options;
  options.num_rounds = 30000;
  const std::vector<VertexId> seeds = {0};
  const auto est = AsMap(sim.EstimateSpread(seeds, options));
  EXPECT_NEAR(est.at(3), 0.4375, 0.02);
  PropagationEngine mia(*g);
  EXPECT_NEAR(AsMap(mia.ComputeFromSource(0, 0.0)).at(3), 0.25, 1e-9);
}

TEST(IcSimulatorTest, DeterministicForSeed) {
  const Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}}, 0.5);
  IcSimulator a(g);
  IcSimulator b(g);
  IcSimulator::Options options;
  options.num_rounds = 500;
  options.seed = 99;
  const std::vector<VertexId> seeds = {0};
  EXPECT_EQ(AsMap(a.EstimateSpread(seeds, options)),
            AsMap(b.EstimateSpread(seeds, options)));
}

TEST(IcSimulatorTest, MinProbabilityFilters) {
  const Graph g = MakeGraph(3, {{0, 1}, {1, 2}}, 0.3);
  IcSimulator sim(g);
  IcSimulator::Options options;
  options.num_rounds = 5000;
  const std::vector<VertexId> seeds = {0};
  const auto all = sim.EstimateSpread(seeds, options, 0.0);
  const auto filtered = sim.EstimateSpread(seeds, options, 0.2);
  EXPECT_GE(all.size(), filtered.size());
  for (double p : filtered.cpp) EXPECT_GE(p, 0.2);
}

TEST(IcSimulatorTest, ExpectedSpreadConsistentWithPerVertex) {
  const Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}}, 0.6);
  IcSimulator sim(g);
  IcSimulator::Options options;
  options.num_rounds = 3000;
  const std::vector<VertexId> seeds = {0};
  const auto per_vertex = sim.EstimateSpread(seeds, options);
  const double direct = sim.EstimateExpectedSpread(seeds, options);
  EXPECT_NEAR(per_vertex.score, direct, 1e-9);  // same RNG seed -> same runs
}

TEST(IcSimulatorTest, SimulatorReusableAcrossCalls) {
  const Graph g = MakeGraph(3, {{0, 1}, {1, 2}}, 0.5);
  IcSimulator sim(g);
  IcSimulator::Options options;
  options.num_rounds = 2000;
  const std::vector<VertexId> s0 = {0};
  const std::vector<VertexId> s2 = {2};
  const double first = sim.EstimateExpectedSpread(s0, options);
  const double second = sim.EstimateExpectedSpread(s2, options);
  // Symmetric chain: both ends should see statistically equal spread.
  EXPECT_NEAR(first, second, 0.1);
}

// THE relationship the MIA model is built on (§II-B): the best-single-path
// probability lower-bounds the IC activation probability for every vertex.
class MiaVsIcPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MiaVsIcPropertyTest, MiaLowerBoundsIc) {
  ErdosRenyiOptions opts;
  opts.num_vertices = 40;
  opts.edge_prob = 0.12;
  opts.seed = GetParam();
  Result<Graph> g = MakeErdosRenyi(opts);
  ASSERT_TRUE(g.ok());
  PropagationEngine mia(*g);
  IcSimulator ic(*g);
  IcSimulator::Options options;
  options.num_rounds = 4000;
  options.seed = GetParam();
  const std::vector<VertexId> seeds = {0, 1};
  const auto mia_est = AsMap(mia.Compute(seeds, 0.0));
  const auto ic_est = AsMap(ic.EstimateSpread(seeds, options));
  for (const auto& [v, p_mia] : mia_est) {
    const auto it = ic_est.find(v);
    const double p_ic = it == ic_est.end() ? 0.0 : it->second;
    // Allow Monte-Carlo noise: ~4 standard errors at 4000 rounds.
    EXPECT_GE(p_ic + 0.032, p_mia) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MiaVsIcPropertyTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace topl

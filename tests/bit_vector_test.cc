#include "keywords/bit_vector.h"

#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace topl {
namespace {

TEST(BitVectorTest, StartsAllZero) {
  BitVector bv(128);
  EXPECT_TRUE(bv.AllZero());
  EXPECT_EQ(bv.bits(), 128u);
  EXPECT_EQ(bv.num_words(), 2u);
}

TEST(BitVectorTest, WidthRoundsUpToWords) {
  EXPECT_EQ(BitVector(1).num_words(), 1u);
  EXPECT_EQ(BitVector(64).num_words(), 1u);
  EXPECT_EQ(BitVector(65).num_words(), 2u);
  EXPECT_EQ(BitVector(200).num_words(), 4u);
}

TEST(BitVectorTest, SetAndTestBits) {
  BitVector bv(100);
  bv.SetBit(0);
  bv.SetBit(63);
  bv.SetBit(64);
  bv.SetBit(99);
  EXPECT_TRUE(bv.TestBit(0));
  EXPECT_TRUE(bv.TestBit(63));
  EXPECT_TRUE(bv.TestBit(64));
  EXPECT_TRUE(bv.TestBit(99));
  EXPECT_FALSE(bv.TestBit(1));
  EXPECT_FALSE(bv.TestBit(65));
  EXPECT_FALSE(bv.AllZero());
}

TEST(BitVectorTest, HashPositionStableAndInRange) {
  for (KeywordId w = 0; w < 1000; ++w) {
    const std::uint32_t p = BitVector::HashPosition(w, 128);
    EXPECT_LT(p, 128u);
    EXPECT_EQ(p, BitVector::HashPosition(w, 128));  // deterministic
  }
}

TEST(BitVectorTest, NoFalseNegatives) {
  // The signature of a keyword set must intersect the signature of any
  // non-disjoint query — the property Lemma 1/5 relies on.
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    BitVector set_bv(64);
    std::vector<KeywordId> kws;
    for (int i = 0; i < 5; ++i) {
      const KeywordId w = static_cast<KeywordId>(rng.NextBounded(500));
      kws.push_back(w);
      set_bv.AddKeyword(w);
    }
    // A query containing one of the set's keywords must intersect.
    const KeywordId probe = kws[rng.NextBounded(kws.size())];
    BitVector q = BitVector::FromKeywords(std::vector<KeywordId>{probe}, 64);
    EXPECT_TRUE(set_bv.IntersectsAny(q));
  }
}

TEST(BitVectorTest, DisjointUsuallyDoNotIntersect) {
  // False positives are allowed but must be rare with few keywords in a
  // 1024-bit signature.
  Rng rng(6);
  int false_positives = 0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    BitVector a(1024);
    BitVector b(1024);
    for (int i = 0; i < 3; ++i) {
      a.AddKeyword(static_cast<KeywordId>(rng.NextBounded(100000)));
      b.AddKeyword(static_cast<KeywordId>(100000 + rng.NextBounded(100000)));
    }
    if (a.IntersectsAny(b)) ++false_positives;
  }
  EXPECT_LT(false_positives, trials / 10);
}

TEST(BitVectorTest, OrWithAccumulates) {
  BitVector a(64);
  BitVector b(64);
  a.AddKeyword(1);
  b.AddKeyword(2);
  a.OrWith(b);
  BitVector q1 = BitVector::FromKeywords(std::vector<KeywordId>{1}, 64);
  BitVector q2 = BitVector::FromKeywords(std::vector<KeywordId>{2}, 64);
  EXPECT_TRUE(a.IntersectsAny(q1));
  EXPECT_TRUE(a.IntersectsAny(q2));
}

TEST(BitVectorTest, ClearResets) {
  BitVector a(64);
  a.AddKeyword(3);
  EXPECT_FALSE(a.AllZero());
  a.Clear();
  EXPECT_TRUE(a.AllZero());
}

TEST(BitVectorTest, EqualityComparesBitsAndWidth) {
  BitVector a(64);
  BitVector b(64);
  EXPECT_TRUE(a == b);
  a.AddKeyword(9);
  EXPECT_FALSE(a == b);
  b.AddKeyword(9);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(BitVector(64) == BitVector(128));
}

TEST(BitVectorTest, FromKeywordsMatchesIncremental) {
  const std::vector<KeywordId> kws = {4, 99, 12345};
  BitVector inc(256);
  for (KeywordId w : kws) inc.AddKeyword(w);
  EXPECT_TRUE(inc == BitVector::FromKeywords(kws, 256));
}

}  // namespace
}  // namespace topl

#include "graph/local_subgraph.h"

#include <algorithm>
#include <set>

#include "graph/bfs.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace topl {
namespace {

using testing::MakeGraph;
using testing::MakeKeywordGraph;

TEST(HopExtractorTest, RadiusOneIsClosedNeighborhood) {
  const Graph g = MakeGraph(6, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  HopExtractor ex(g);
  LocalGraph lg;
  ASSERT_TRUE(ex.Extract(0, 1, {}, &lg));
  std::set<VertexId> got(lg.global_ids.begin(), lg.global_ids.end());
  EXPECT_EQ(got, (std::set<VertexId>{0, 1, 2}));
  EXPECT_EQ(lg.NumEdges(), 3u);  // induced triangle
}

TEST(HopExtractorTest, DistancesMatchBfs) {
  SmallWorldOptions opts;
  opts.num_vertices = 200;
  opts.seed = 4;
  Result<Graph> g = MakeSmallWorld(opts);
  ASSERT_TRUE(g.ok());
  HopExtractor ex(*g);
  LocalGraph lg;
  for (VertexId center : {VertexId{0}, VertexId{17}, VertexId{111}}) {
    ASSERT_TRUE(ex.Extract(center, 3, {}, &lg));
    const auto dist = BfsDistances(*g, center, 3);
    std::size_t expected = 0;
    for (std::uint32_t d : dist) {
      if (d != kUnreachedDistance) ++expected;
    }
    EXPECT_EQ(lg.NumVertices(), expected);
    for (std::size_t l = 0; l < lg.NumVertices(); ++l) {
      EXPECT_EQ(lg.dist[l], dist[lg.global_ids[l]]);
    }
  }
}

TEST(HopExtractorTest, BfsOrderIsPrefixFriendly) {
  SmallWorldOptions opts;
  opts.num_vertices = 150;
  Result<Graph> g = MakeSmallWorld(opts);
  ASSERT_TRUE(g.ok());
  HopExtractor ex(*g);
  LocalGraph lg;
  ASSERT_TRUE(ex.Extract(5, 3, {}, &lg));
  EXPECT_TRUE(std::is_sorted(lg.dist.begin(), lg.dist.end()));
}

TEST(HopExtractorTest, InducedEdgesComplete) {
  const Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}});
  HopExtractor ex(g);
  LocalGraph lg;
  ASSERT_TRUE(ex.Extract(0, 2, {}, &lg));
  // Members: 0,1,2 (d<=1), 3 (d=2). Induced edges: 01, 12, 20, 23.
  EXPECT_EQ(lg.NumVertices(), 4u);
  EXPECT_EQ(lg.NumEdges(), 4u);
  // Every local edge maps back to a real global edge between its endpoints.
  for (std::uint32_t e = 0; e < lg.NumEdges(); ++e) {
    const auto [a, b] = lg.edge_endpoints[e];
    EXPECT_TRUE(g.HasEdge(lg.global_ids[a], lg.global_ids[b]));
    EXPECT_EQ(lg.global_edge_ids[e],
              g.FindEdge(lg.global_ids[a], lg.global_ids[b]));
    EXPECT_EQ(lg.edge_radius[e], std::max(lg.dist[a], lg.dist[b]));
  }
}

TEST(HopExtractorTest, KeywordFilterBlocksTraversal) {
  // 0 -kw- 1 -NOKW- 2 -kw- 3 : vertex 2 lacks the keyword, so 3 must be
  // unreachable through it even within the radius.
  const Graph g =
      MakeKeywordGraph(4, {{0, 1}, {1, 2}, {2, 3}}, {{7}, {7}, {1}, {7}});
  HopExtractor ex(g);
  LocalGraph lg;
  const std::vector<KeywordId> filter = {7};
  ASSERT_TRUE(ex.Extract(0, 3, filter, &lg));
  std::set<VertexId> got(lg.global_ids.begin(), lg.global_ids.end());
  EXPECT_EQ(got, (std::set<VertexId>{0, 1}));
}

TEST(HopExtractorTest, CenterFailingFilterReturnsFalse) {
  const Graph g = MakeKeywordGraph(2, {{0, 1}}, {{1}, {2}});
  HopExtractor ex(g);
  LocalGraph lg;
  const std::vector<KeywordId> filter = {2};
  EXPECT_FALSE(ex.Extract(0, 1, filter, &lg));
  EXPECT_EQ(lg.NumVertices(), 0u);
}

TEST(HopExtractorTest, ReusableAcrossCalls) {
  const Graph g = MakeGraph(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  HopExtractor ex(g);
  LocalGraph lg;
  ASSERT_TRUE(ex.Extract(0, 2, {}, &lg));
  EXPECT_EQ(lg.NumVertices(), 3u);
  ASSERT_TRUE(ex.Extract(3, 1, {}, &lg));
  std::set<VertexId> got(lg.global_ids.begin(), lg.global_ids.end());
  EXPECT_EQ(got, (std::set<VertexId>{3, 4}));  // stale state must not leak
}

TEST(HopExtractorTest, LocalAdjacencyConsistent) {
  SmallWorldOptions opts;
  opts.num_vertices = 120;
  opts.seed = 8;
  Result<Graph> g = MakeSmallWorld(opts);
  ASSERT_TRUE(g.ok());
  HopExtractor ex(*g);
  LocalGraph lg;
  ASSERT_TRUE(ex.Extract(10, 2, {}, &lg));
  // Arc lists sorted; every arc's edge endpoints match; each edge appears in
  // exactly two lists.
  std::vector<int> appearances(lg.NumEdges(), 0);
  for (std::uint32_t l = 0; l < lg.NumVertices(); ++l) {
    const auto arcs = lg.Neighbors(l);
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      if (i > 0) {
        EXPECT_LT(arcs[i - 1].to, arcs[i].to);
      }
      ++appearances[arcs[i].local_edge];
      const auto [a, b] = lg.edge_endpoints[arcs[i].local_edge];
      EXPECT_TRUE((a == l && b == arcs[i].to) || (b == l && a == arcs[i].to));
    }
  }
  for (int count : appearances) EXPECT_EQ(count, 2);
}

TEST(HopExtractorTest, HasAnyKeywordMergeSemantics) {
  const Graph g = MakeKeywordGraph(1, {}, {{2, 5, 9}});
  EXPECT_TRUE(HopExtractor::HasAnyKeyword(g, 0, std::vector<KeywordId>{5}));
  EXPECT_TRUE(HopExtractor::HasAnyKeyword(g, 0, std::vector<KeywordId>{1, 9}));
  EXPECT_FALSE(HopExtractor::HasAnyKeyword(g, 0, std::vector<KeywordId>{1, 3, 4}));
  EXPECT_FALSE(HopExtractor::HasAnyKeyword(g, 0, std::vector<KeywordId>{}));
}

}  // namespace
}  // namespace topl

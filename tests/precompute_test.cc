#include "index/precompute.h"

#include <algorithm>

#include "core/brute_force.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "graph/local_subgraph.h"
#include "gtest/gtest.h"
#include "influence/propagation.h"
#include "tests/test_util.h"
#include "truss/support.h"
#include "truss/truss_decomposition.h"

namespace topl {
namespace {

using testing::MakeGraph;

PrecomputeOptions SmallOptions() {
  PrecomputeOptions opts;
  opts.r_max = 3;
  opts.thetas = {0.1, 0.2, 0.3};
  opts.signature_bits = 64;
  opts.num_threads = 2;
  return opts;
}

TEST(PrecomputeTest, RejectsBadOptions) {
  const Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  PrecomputeOptions opts = SmallOptions();
  opts.r_max = 0;
  EXPECT_FALSE(PrecomputedData::Build(g, opts).ok());
  opts = SmallOptions();
  opts.thetas = {};
  EXPECT_FALSE(PrecomputedData::Build(g, opts).ok());
  opts = SmallOptions();
  opts.thetas = {0.3, 0.2};  // not ascending
  EXPECT_FALSE(PrecomputedData::Build(g, opts).ok());
  opts = SmallOptions();
  opts.thetas = {0.2, 1.5};  // out of range
  EXPECT_FALSE(PrecomputedData::Build(g, opts).ok());
  opts = SmallOptions();
  opts.signature_bits = 4;
  EXPECT_FALSE(PrecomputedData::Build(g, opts).ok());
}

TEST(PrecomputeTest, ThresholdIndexSelection) {
  const Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  Result<PrecomputedData> pre = PrecomputedData::Build(g, SmallOptions());
  ASSERT_TRUE(pre.ok());
  EXPECT_EQ(pre->ThresholdIndex(0.05), -1);  // below θ_1: no valid bound
  EXPECT_EQ(pre->ThresholdIndex(0.1), 0);
  EXPECT_EQ(pre->ThresholdIndex(0.15), 0);
  EXPECT_EQ(pre->ThresholdIndex(0.2), 1);
  EXPECT_EQ(pre->ThresholdIndex(0.25), 1);
  EXPECT_EQ(pre->ThresholdIndex(0.3), 2);
  EXPECT_EQ(pre->ThresholdIndex(0.9), 2);
}

TEST(PrecomputeTest, SupportBoundsMonotoneInRadius) {
  SmallWorldOptions gen;
  gen.num_vertices = 120;
  gen.seed = 31;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  Result<PrecomputedData> pre = PrecomputedData::Build(*g, SmallOptions());
  ASSERT_TRUE(pre.ok());
  for (VertexId v = 0; v < g->NumVertices(); ++v) {
    for (std::uint32_t r = 2; r <= 3; ++r) {
      EXPECT_GE(pre->SupportBound(v, r), pre->SupportBound(v, r - 1));
    }
  }
}

TEST(PrecomputeTest, ScoreBoundsMonotoneInRadiusAndTheta) {
  SmallWorldOptions gen;
  gen.num_vertices = 120;
  gen.seed = 32;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  Result<PrecomputedData> pre = PrecomputedData::Build(*g, SmallOptions());
  ASSERT_TRUE(pre.ok());
  for (VertexId v = 0; v < g->NumVertices(); ++v) {
    for (std::uint32_t r = 1; r <= 3; ++r) {
      if (r >= 2) {
        // Larger seed subgraph -> larger influence bound.
        EXPECT_GE(pre->ScoreBound(v, r, 0), pre->ScoreBound(v, r - 1, 0) - 1e-12);
      }
      for (std::uint32_t z = 1; z < 3; ++z) {
        // Larger theta -> smaller score.
        EXPECT_LE(pre->ScoreBound(v, r, z), pre->ScoreBound(v, r, z - 1) + 1e-12);
      }
    }
  }
}

TEST(PrecomputeTest, SupportBoundEqualsMaxBallSupportInHop) {
  // Algorithm 2 semantics: edge supports measured within hop(v, r_max), and
  // ub_sup_r = max over the edges of hop(v, r).
  SmallWorldOptions gen;
  gen.num_vertices = 100;
  gen.seed = 33;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  Result<PrecomputedData> pre = PrecomputedData::Build(*g, SmallOptions());
  ASSERT_TRUE(pre.ok());
  HopExtractor ex(*g);
  LocalGraph ball;
  for (VertexId v = 0; v < 20; ++v) {
    ASSERT_TRUE(ex.Extract(v, 3, {}, &ball));
    const std::vector<char> alive(ball.NumEdges(), 1);
    const auto ball_sup = ComputeLocalEdgeSupports(ball, alive);
    for (std::uint32_t r = 1; r <= 3; ++r) {
      std::uint32_t expect = 0;
      for (std::size_t e = 0; e < ball.NumEdges(); ++e) {
        if (ball.edge_radius[e] <= r) expect = std::max(expect, ball_sup[e]);
      }
      EXPECT_EQ(pre->SupportBound(v, r), expect) << "v=" << v << " r=" << r;
    }
  }
}

TEST(PrecomputeTest, CenterTrussBoundIsSafe) {
  // No seed community centered at v can exceed CenterTrussBound(v): for
  // every community the brute-force path finds at truss level k, the bound
  // of its center must be >= k.
  SmallWorldOptions gen;
  gen.num_vertices = 150;
  gen.seed = 37;
  gen.keywords.domain_size = 8;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  Result<PrecomputedData> pre = PrecomputedData::Build(*g, SmallOptions());
  ASSERT_TRUE(pre.ok());
  for (std::uint32_t k : {3u, 4u, 5u}) {
    Query q;
    q.keywords = {0, 1, 2, 3};
    q.k = k;
    q.radius = 2;
    q.theta = 0.2;
    q.top_l = 1000;
    Result<std::vector<CommunityResult>> all = EnumerateAllCommunities(*g, q);
    ASSERT_TRUE(all.ok());
    for (const CommunityResult& c : all.value()) {
      EXPECT_GE(pre->CenterTrussBound(c.community.center), k)
          << "center " << c.community.center << " k=" << k;
    }
  }
}

TEST(PrecomputeTest, CenterTrussBoundMatchesBallDecomposition) {
  SmallWorldOptions gen;
  gen.num_vertices = 80;
  gen.seed = 38;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  Result<PrecomputedData> pre = PrecomputedData::Build(*g, SmallOptions());
  ASSERT_TRUE(pre.ok());
  HopExtractor ex(*g);
  LocalGraph ball;
  for (VertexId v = 0; v < 30; ++v) {
    ASSERT_TRUE(ex.Extract(v, 3, {}, &ball));
    const auto trussness = LocalTrussDecomposition(ball);
    EXPECT_EQ(pre->CenterTrussBound(v), LocalCenterTrussness(ball, trussness));
  }
}

TEST(PrecomputeTest, ScoreBoundEqualsHopInfluence) {
  SmallWorldOptions gen;
  gen.num_vertices = 100;
  gen.seed = 34;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  const PrecomputeOptions opts = SmallOptions();
  Result<PrecomputedData> pre = PrecomputedData::Build(*g, opts);
  ASSERT_TRUE(pre.ok());
  PropagationEngine engine(*g);
  HopExtractor ex(*g);
  LocalGraph lg;
  for (VertexId v = 0; v < 15; ++v) {
    for (std::uint32_t r = 1; r <= 3; ++r) {
      ASSERT_TRUE(ex.Extract(v, r, {}, &lg));
      for (std::uint32_t z = 0; z < opts.thetas.size(); ++z) {
        const auto direct = engine.Compute(lg.global_ids, opts.thetas[z]);
        EXPECT_NEAR(pre->ScoreBound(v, r, z), direct.score, 1e-9)
            << "v=" << v << " r=" << r << " z=" << z;
      }
    }
  }
}

TEST(PrecomputeTest, SignatureCoversAllHopKeywords) {
  SmallWorldOptions gen;
  gen.num_vertices = 100;
  gen.seed = 35;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  Result<PrecomputedData> pre = PrecomputedData::Build(*g, SmallOptions());
  ASSERT_TRUE(pre.ok());
  HopExtractor ex(*g);
  LocalGraph lg;
  for (VertexId v = 0; v < 20; ++v) {
    for (std::uint32_t r = 1; r <= 3; ++r) {
      ASSERT_TRUE(ex.Extract(v, r, {}, &lg));
      // Every keyword of every member must hit the signature — the
      // no-false-negative property keyword pruning relies on.
      for (VertexId member : lg.global_ids) {
        for (KeywordId w : g->Keywords(member)) {
          BitVector probe = BitVector::FromKeywords(std::vector<KeywordId>{w},
                                                    pre->signature_bits());
          EXPECT_TRUE(pre->SignatureIntersects(v, r, probe))
              << "keyword " << w << " of member " << member << " missing";
        }
      }
    }
  }
}

// THE safety property behind Lemma 4/7: the precomputed σ_z dominates the
// exact σ of every seed community centered at v, for every online θ ≥ θ_z.
class ScoreBoundSafetyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScoreBoundSafetyTest, BoundDominatesExactScores) {
  SmallWorldOptions gen;
  gen.num_vertices = 150;
  gen.seed = GetParam();
  gen.keywords.domain_size = 10;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  Result<PrecomputedData> pre = PrecomputedData::Build(*g, SmallOptions());
  ASSERT_TRUE(pre.ok());

  Query q;
  q.keywords = {0, 1, 2, 3, 4};
  q.k = 3;
  q.radius = 2;
  q.theta = 0.25;  // falls in [θ_2, θ_3) -> z = 1
  q.top_l = 1000;  // enumerate everything
  Result<std::vector<CommunityResult>> all = EnumerateAllCommunities(*g, q);
  ASSERT_TRUE(all.ok());
  const int z = pre->ThresholdIndex(q.theta);
  ASSERT_EQ(z, 1);
  for (const CommunityResult& c : all.value()) {
    EXPECT_LE(c.score(),
              pre->ScoreBound(c.community.center, q.radius,
                              static_cast<std::uint32_t>(z)) +
                  1e-9)
        << "center " << c.community.center;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScoreBoundSafetyTest, ::testing::Values(1, 2, 3, 4));

TEST(PrecomputeTest, SingleThreadMatchesParallel) {
  SmallWorldOptions gen;
  gen.num_vertices = 90;
  gen.seed = 36;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  PrecomputeOptions serial = SmallOptions();
  serial.num_threads = 1;
  PrecomputeOptions parallel = SmallOptions();
  parallel.num_threads = 4;
  Result<PrecomputedData> a = PrecomputedData::Build(*g, serial);
  Result<PrecomputedData> b = PrecomputedData::Build(*g, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (VertexId v = 0; v < g->NumVertices(); ++v) {
    for (std::uint32_t r = 1; r <= 3; ++r) {
      EXPECT_EQ(a->SupportBound(v, r), b->SupportBound(v, r));
      for (std::uint32_t z = 0; z < 3; ++z) {
        EXPECT_DOUBLE_EQ(a->ScoreBound(v, r, z), b->ScoreBound(v, r, z));
      }
      const auto wa = a->SignatureWords(v, r);
      const auto wb = b->SignatureWords(v, r);
      for (std::size_t i = 0; i < wa.size(); ++i) EXPECT_EQ(wa[i], wb[i]);
    }
  }
}

}  // namespace
}  // namespace topl

// The delta+varint codec under the compressed TOPLIDX2 sections: encode and
// decode must be exact inverses on every value shape the artifact stores
// (exhaustive small values, the 7-bit group boundaries, maximal deltas), and
// the decoders must reject every malformed stream — truncation, overlong
// encodings, trailing garbage, counts that overrun the payload — because
// they run on bytes that came straight off disk.

#include "storage/varint.h"

#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "gtest/gtest.h"

namespace topl {
namespace {

std::vector<std::uint8_t> EncodeOne(std::uint64_t value) {
  std::vector<std::uint8_t> out;
  PutUvarint(out, value);
  return out;
}

// Decodes a single uvarint and demands it consume the whole buffer.
bool DecodeOne(const std::vector<std::uint8_t>& bytes, std::uint64_t* value) {
  std::size_t pos = 0;
  return GetUvarint(bytes, &pos, value) && pos == bytes.size();
}

TEST(VarintTest, RoundTripsExhaustiveSmallValues) {
  for (std::uint64_t v = 0; v < 100000; ++v) {
    std::uint64_t back = 0;
    ASSERT_TRUE(DecodeOne(EncodeOne(v), &back)) << v;
    ASSERT_EQ(back, v);
  }
}

TEST(VarintTest, RoundTripsGroupBoundaries) {
  // Every 7-bit group boundary (where the encoded length changes) plus the
  // extremes of the 32- and 64-bit domains.
  std::vector<std::uint64_t> values = {0, 1};
  for (int shift = 7; shift < 64; shift += 7) {
    const std::uint64_t edge = 1ULL << shift;
    values.push_back(edge - 1);
    values.push_back(edge);
    values.push_back(edge + 1);
  }
  values.push_back(std::numeric_limits<std::uint32_t>::max());
  values.push_back(std::numeric_limits<std::uint64_t>::max());
  for (const std::uint64_t v : values) {
    const std::vector<std::uint8_t> bytes = EncodeOne(v);
    EXPECT_LE(bytes.size(), 10u);
    std::uint64_t back = 0;
    ASSERT_TRUE(DecodeOne(bytes, &back)) << v;
    EXPECT_EQ(back, v);
  }
}

TEST(VarintTest, EncodedLengthsMatchTheSevenBitGroups) {
  EXPECT_EQ(EncodeOne(0).size(), 1u);
  EXPECT_EQ(EncodeOne(127).size(), 1u);
  EXPECT_EQ(EncodeOne(128).size(), 2u);
  EXPECT_EQ(EncodeOne(16383).size(), 2u);
  EXPECT_EQ(EncodeOne(16384).size(), 3u);
  EXPECT_EQ(EncodeOne(std::numeric_limits<std::uint64_t>::max()).size(), 10u);
}

TEST(VarintTest, TruncatedVarintsAreRejected) {
  for (const std::uint64_t v :
       {std::uint64_t{128}, std::uint64_t{1} << 30, std::uint64_t{1} << 60,
        std::numeric_limits<std::uint64_t>::max()}) {
    const std::vector<std::uint8_t> bytes = EncodeOne(v);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + len);
      std::size_t pos = 0;
      std::uint64_t out = 0;
      EXPECT_FALSE(GetUvarint(cut, &pos, &out))
          << "value " << v << " truncated to " << len << " bytes";
    }
  }
}

TEST(VarintTest, OverlongAndOverflowingEncodingsAreRejected) {
  // Eleven continuation groups can never be a canonical uvarint.
  std::vector<std::uint8_t> too_long(10, 0x80);
  too_long.push_back(0x01);
  std::size_t pos = 0;
  std::uint64_t out = 0;
  EXPECT_FALSE(GetUvarint(too_long, &pos, &out));

  // Ten bytes whose final group pushes past 2^64.
  std::vector<std::uint8_t> overflow(9, 0x80);
  overflow.push_back(0x02);  // bit 64 set
  pos = 0;
  EXPECT_FALSE(GetUvarint(overflow, &pos, &out));

  // The maximal value itself stays accepted (boundary of the same check).
  ASSERT_TRUE(
      DecodeOne(EncodeOne(std::numeric_limits<std::uint64_t>::max()), &out));
  EXPECT_EQ(out, std::numeric_limits<std::uint64_t>::max());
}

TEST(VarintTest, ZigZagIsAnExactInvolutionOnBoundaryValues) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1}, std::int64_t{63},
        std::int64_t{-64}, std::numeric_limits<std::int64_t>::max(),
        std::numeric_limits<std::int64_t>::min()}) {
    EXPECT_EQ(ZigZagDecode64(ZigZagEncode64(v)), v) << v;
  }
  // Small magnitudes map to small codes (the property delta coding exploits).
  EXPECT_EQ(ZigZagEncode64(0), 0u);
  EXPECT_EQ(ZigZagEncode64(-1), 1u);
  EXPECT_EQ(ZigZagEncode64(1), 2u);
  EXPECT_EQ(ZigZagEncode64(-2), 3u);
}

TEST(VarintTest, DeltaU32RoundTripsEdgeSequences) {
  const std::uint32_t max32 = std::numeric_limits<std::uint32_t>::max();
  const std::vector<std::vector<std::uint32_t>> sequences = {
      {},                       // empty section (degenerate graph slice)
      {0},                      // single element
      {max32},                  // single maximal element
      {0, max32},               // maximal positive delta
      {max32, 0},               // maximal negative delta
      {0, max32, 0, max32, 0},  // alternating extremes
      {5, 5, 5, 5},             // zero deltas
      {0, 1, 2, 3, 1000, 999},  // mixed monotone and backward steps
  };
  for (const auto& seq : sequences) {
    const std::vector<std::uint8_t> bytes = EncodeDeltaU32<std::uint32_t>(seq);
    std::vector<std::uint32_t> back;
    ASSERT_TRUE(DecodeDeltaU32<std::uint32_t>(bytes, &back));
    EXPECT_EQ(back, seq);
  }
}

TEST(VarintTest, DeltaU64RoundTripsArbitrarySequences) {
  std::mt19937_64 rng(7);
  std::vector<std::uint64_t> seq;
  for (int i = 0; i < 4096; ++i) {
    // Mix of small monotone steps and full-width jumps: wrap-around deltas
    // must still reconstruct exactly (mod-2^64 arithmetic).
    seq.push_back(i % 7 == 0 ? rng() : (seq.empty() ? 0 : seq.back() + i));
  }
  const std::vector<std::uint8_t> bytes = EncodeDeltaU64(seq);
  std::vector<std::uint64_t> back;
  ASSERT_TRUE(DecodeDeltaU64(bytes, &back));
  EXPECT_EQ(back, seq);

  const std::vector<std::uint64_t> empty;
  std::vector<std::uint64_t> empty_back = {1};
  ASSERT_TRUE(DecodeDeltaU64(EncodeDeltaU64(empty), &empty_back));
  EXPECT_TRUE(empty_back.empty());
}

TEST(VarintTest, FuzzedRandomU32SequencesRoundTrip) {
  std::mt19937_64 rng(42);
  for (int round = 0; round < 200; ++round) {
    const std::size_t len = rng() % 300;
    std::vector<std::uint32_t> seq(len);
    for (std::uint32_t& v : seq) {
      // Skewed toward small values with occasional full-range outliers —
      // the distribution CSR offsets and sorted ids actually have.
      v = (rng() % 4 == 0) ? static_cast<std::uint32_t>(rng())
                           : static_cast<std::uint32_t>(rng() % 1024);
    }
    std::vector<std::uint32_t> back;
    ASSERT_TRUE(
        DecodeDeltaU32<std::uint32_t>(EncodeDeltaU32<std::uint32_t>(seq), &back));
    ASSERT_EQ(back, seq);
    ASSERT_TRUE(DecodeVarintU32<std::uint32_t>(EncodeVarintU32<std::uint32_t>(seq),
                                               &back));
    ASSERT_EQ(back, seq);
  }
}

TEST(VarintTest, StreamsWithTrailingGarbageAreRejected) {
  const std::vector<std::uint32_t> seq = {1, 2, 3};
  std::vector<std::uint8_t> bytes = EncodeDeltaU32<std::uint32_t>(seq);
  bytes.push_back(0x00);
  std::vector<std::uint32_t> out;
  EXPECT_FALSE(DecodeDeltaU32<std::uint32_t>(bytes, &out));

  bytes = EncodeVarintU32<std::uint32_t>(seq);
  bytes.push_back(0x00);
  EXPECT_FALSE(DecodeVarintU32<std::uint32_t>(bytes, &out));
}

TEST(VarintTest, TruncatedSequenceStreamsAreRejected) {
  const std::vector<std::uint32_t> seq = {1000, 2000, 3000, 4000};
  const std::vector<std::uint8_t> bytes = EncodeDeltaU32<std::uint32_t>(seq);
  std::vector<std::uint32_t> out;
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + len);
    EXPECT_FALSE(DecodeDeltaU32<std::uint32_t>(cut, &out)) << len;
  }
}

TEST(VarintTest, HugeCountPrefixCannotBalloonAllocation) {
  // count = 2^40 followed by no payload: the decoder must reject before
  // reserving, not attempt a terabyte vector.
  std::vector<std::uint8_t> bytes;
  PutUvarint(bytes, std::uint64_t{1} << 40);
  std::vector<std::uint32_t> out32;
  std::vector<std::uint64_t> out64;
  EXPECT_FALSE(DecodeDeltaU32<std::uint32_t>(bytes, &out32));
  EXPECT_FALSE(DecodeVarintU32<std::uint32_t>(bytes, &out32));
  EXPECT_FALSE(DecodeDeltaU64(bytes, &out64));
}

TEST(VarintTest, U32DecodersRejectValuesOutOfRange) {
  // A delta stream reconstructing past UINT32_MAX (or below 0) is not a
  // valid uint32 stream even though each varint parses.
  const std::vector<std::uint64_t> high = {std::uint64_t{1} << 40};
  std::vector<std::uint32_t> out;
  EXPECT_FALSE(DecodeDeltaU32<std::uint32_t>(EncodeDeltaU64(high), &out));

  std::vector<std::uint8_t> negative;
  PutUvarint(negative, 1);                   // count = 1
  PutUvarint(negative, ZigZagEncode64(-1));  // first prefix sum = -1
  EXPECT_FALSE(DecodeDeltaU32<std::uint32_t>(negative, &out));

  std::vector<std::uint8_t> big_plain;
  PutUvarint(big_plain, 1);
  PutUvarint(big_plain, std::uint64_t{1} << 40);
  EXPECT_FALSE(DecodeVarintU32<std::uint32_t>(big_plain, &out));
}

TEST(VarintTest, FuzzedMutationsNeverCrashTheDecoders) {
  // Random byte mutations over a valid stream: every outcome must be either
  // a clean false or a successful decode — never a crash or out-of-bounds
  // read (the ASan job enforces the latter).
  std::vector<std::uint32_t> seq(64);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    seq[i] = static_cast<std::uint32_t>(i * 2654435761u);
  }
  const std::vector<std::uint8_t> bytes = EncodeDeltaU32<std::uint32_t>(seq);
  std::mt19937_64 rng(99);
  std::vector<std::uint32_t> out;
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> mutated = bytes;
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] ^=
          static_cast<std::uint8_t>(1 + rng() % 255);
    }
    if (rng() % 3 == 0) mutated.resize(rng() % (mutated.size() + 1));
    if (DecodeDeltaU32<std::uint32_t>(mutated, &out)) {
      EXPECT_LE(out.size(), mutated.size());  // count prefix was validated
    }
  }
}

}  // namespace
}  // namespace topl

// Determinism and anytime-contract tests of the staged plan/score/merge
// pipeline (core/topl_detector.cc): parallel scoring must return
// byte-identical results to the sequential path, truncation must preserve
// the best-so-far invariant, and progressive updates must converge
// monotonically to the exact answer.

#include <atomic>
#include <cmath>
#include <limits>
#include <vector>

#include "core/brute_force.h"
#include "core/dtopl_detector.h"
#include "core/topl_detector.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace topl {
namespace {

using testing::BuildIndexFor;
using testing::BuiltIndex;

Graph MakeRandomGraph(std::uint64_t seed, std::size_t vertices = 220) {
  SmallWorldOptions gen;
  gen.num_vertices = vertices;
  gen.seed = seed;
  gen.keywords.domain_size = 14;
  gen.keywords.keywords_per_vertex = 3;
  Result<Graph> g = MakeSmallWorld(gen);
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

// Byte-identical equality: same centers, same member lists, same influenced
// vertices, bit-identical cpp values and scores, same order.
void ExpectIdentical(const std::vector<CommunityResult>& actual,
                     const std::vector<CommunityResult>& expected,
                     const char* label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].community.center, expected[i].community.center)
        << label << " rank " << i;
    EXPECT_EQ(actual[i].community.vertices, expected[i].community.vertices)
        << label << " rank " << i;
    EXPECT_EQ(actual[i].community.edges, expected[i].community.edges)
        << label << " rank " << i;
    EXPECT_EQ(actual[i].influence.vertices, expected[i].influence.vertices)
        << label << " rank " << i;
    EXPECT_EQ(actual[i].influence.cpp, expected[i].influence.cpp)
        << label << " rank " << i;
    EXPECT_EQ(actual[i].score(), expected[i].score()) << label << " rank " << i;
  }
}

// The headline determinism property: across ≥20 random graphs, the parallel
// scoring path (several chunk sizes, several pool widths) returns results
// byte-identical to the sequential path — which in turn matches brute force.
TEST(ParallelSearchTest, ParallelMatchesSequentialAcross20RandomGraphs) {
  ThreadPool pool(4);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Graph g = MakeRandomGraph(seed);
    const BuiltIndex built = BuildIndexFor(g);
    TopLDetector detector(g, built.pre(), built.tree);

    Query q;
    q.keywords = {0, 2, 5, 7};
    q.k = 3;
    q.radius = 2;
    q.theta = 0.2;
    q.top_l = 4;

    Result<TopLResult> sequential = detector.Search(q);
    ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
    EXPECT_FALSE(sequential->truncated);

    Result<TopLResult> brute = BruteForceTopL(g, q);
    ASSERT_TRUE(brute.ok());
    ExpectIdentical(sequential->communities, brute->communities, "seq-vs-brute");

    for (std::uint32_t chunk : {1u, 3u, 8u}) {
      SearchControl control;
      control.pool = &pool;
      control.chunk_size = chunk;
      Result<TopLResult> parallel = detector.Search(q, QueryOptions(), control);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      EXPECT_FALSE(parallel->truncated);
      ExpectIdentical(parallel->communities, sequential->communities,
                      ("chunk=" + std::to_string(chunk)).c_str());
    }
  }
}

TEST(ParallelSearchTest, ParallelDiversifiedMatchesSequential) {
  ThreadPool pool(3);
  for (std::uint64_t seed : {31u, 32u, 33u, 34u, 35u}) {
    const Graph g = MakeRandomGraph(seed);
    const BuiltIndex built = BuildIndexFor(g);
    DTopLDetector detector(g, built.pre(), built.tree);

    Query q;
    q.keywords = {1, 3, 6};
    q.k = 3;
    q.radius = 2;
    q.theta = 0.2;
    q.top_l = 3;
    DTopLOptions options;
    options.n_factor = 3;

    Result<DTopLResult> sequential = detector.Search(q, options);
    ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();

    SearchControl control;
    control.pool = &pool;
    control.chunk_size = 4;
    Result<DTopLResult> parallel = detector.Search(q, options, control);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_FALSE(parallel->truncated);
    ExpectIdentical(parallel->communities, sequential->communities, "dtopl");
    EXPECT_EQ(parallel->diversity_score, sequential->diversity_score);
  }
}

TEST(ParallelSearchTest, ExactAnswerReportsMinusInfinityUpperBound) {
  const Graph g = MakeRandomGraph(7);
  const BuiltIndex built = BuildIndexFor(g);
  TopLDetector detector(g, built.pre(), built.tree);
  Query q;
  q.keywords = {0, 2};
  q.k = 3;
  q.radius = 1;
  q.theta = 0.2;
  q.top_l = 3;
  Result<TopLResult> result = detector.Search(q);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->truncated);
  EXPECT_EQ(result->score_upper_bound,
            -std::numeric_limits<double>::infinity());
}

TEST(ParallelSearchTest, PreCancelledTokenTruncatesBeforeFirstResult) {
  const Graph g = MakeRandomGraph(8);
  const BuiltIndex built = BuildIndexFor(g);
  TopLDetector detector(g, built.pre(), built.tree);
  Query q;
  q.keywords = {0, 2, 5};
  q.k = 3;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 3;

  SearchControl control;
  control.cancel = CancelToken::Create();
  control.cancel.Cancel();
  Result<TopLResult> result = detector.Search(q, QueryOptions(), control);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->truncated);
  EXPECT_TRUE(result->communities.empty());
  EXPECT_EQ(result->stats.candidates_refined, 0u);
  // The gap covers the whole unexplored space: at least the best score.
  Result<TopLResult> exact = detector.Search(q);
  ASSERT_TRUE(exact.ok());
  if (!exact->communities.empty()) {
    EXPECT_GE(result->score_upper_bound, exact->communities.front().score());
  }
}

TEST(ParallelSearchTest, ZeroDeadlineExpiresMidSearchWithBestSoFar) {
  const Graph g = MakeRandomGraph(9);
  const BuiltIndex built = BuildIndexFor(g);
  TopLDetector detector(g, built.pre(), built.tree);
  Query q;
  q.keywords = {0, 2, 5};
  q.k = 3;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 3;

  SearchControl control;
  control.deadline_seconds = 1e-12;  // expires at the first checkpoint
  Result<TopLResult> result = detector.Search(q, QueryOptions(), control);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->truncated);
  // Best-so-far: whatever was returned is a subset of the exact answer's
  // candidate space, sorted canonically, scores bounded by the reported gap.
  for (std::size_t i = 1; i < result->communities.size(); ++i) {
    EXPECT_TRUE(!BetterCommunity(result->communities[i],
                                 result->communities[i - 1]));
  }
}

TEST(ParallelSearchTest, GenerousDeadlineDoesNotTruncate) {
  const Graph g = MakeRandomGraph(10);
  const BuiltIndex built = BuildIndexFor(g);
  TopLDetector detector(g, built.pre(), built.tree);
  Query q;
  q.keywords = {0, 2, 5};
  q.k = 3;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 3;

  SearchControl control;
  control.deadline_seconds = 3600.0;
  Result<TopLResult> controlled = detector.Search(q, QueryOptions(), control);
  Result<TopLResult> plain = detector.Search(q);
  ASSERT_TRUE(controlled.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(controlled->truncated);
  ExpectIdentical(controlled->communities, plain->communities, "deadline-noop");
}

TEST(ParallelSearchTest, ProgressiveUpdatesConvergeToExactAnswer) {
  const Graph g = MakeRandomGraph(11);
  const BuiltIndex built = BuildIndexFor(g);
  TopLDetector detector(g, built.pre(), built.tree);
  Query q;
  q.keywords = {0, 2, 5, 7};
  q.k = 3;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 4;

  Result<TopLResult> exact = detector.Search(q);
  ASSERT_TRUE(exact.ok());

  std::vector<double> best_scores;
  std::vector<double> bounds;
  SearchControl control;
  control.on_progress = [&](const ProgressiveUpdate& update) {
    if (!update.communities.empty()) {
      best_scores.push_back(update.communities.front().score());
      // Canonical order within every update.
      for (std::size_t i = 1; i < update.communities.size(); ++i) {
        EXPECT_TRUE(!BetterCommunity(update.communities[i],
                                     update.communities[i - 1]));
      }
    }
    bounds.push_back(update.upper_bound);
    return true;
  };
  Result<TopLResult> progressive = detector.Search(q, QueryOptions(), control);
  ASSERT_TRUE(progressive.ok());
  EXPECT_FALSE(progressive->truncated);
  ExpectIdentical(progressive->communities, exact->communities, "progressive");

  // The running best never regresses, and the final streamed best equals the
  // exact top score.
  for (std::size_t i = 1; i < best_scores.size(); ++i) {
    EXPECT_GE(best_scores[i], best_scores[i - 1]);
  }
  if (!exact->communities.empty()) {
    ASSERT_FALSE(best_scores.empty());
    EXPECT_EQ(best_scores.back(), exact->communities.front().score());
  }
}

TEST(ParallelSearchTest, ProgressiveCallbackCanStopEarly) {
  const Graph g = MakeRandomGraph(12);
  const BuiltIndex built = BuildIndexFor(g);
  TopLDetector detector(g, built.pre(), built.tree);
  Query q;
  q.keywords = {0, 2, 5};
  q.k = 3;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 3;

  int updates = 0;
  SearchControl control;
  control.on_progress = [&](const ProgressiveUpdate&) {
    ++updates;
    return false;  // stop after the first update
  };
  Result<TopLResult> result = detector.Search(q, QueryOptions(), control);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(updates, 1);
  EXPECT_FALSE(result->communities.empty());
  if (!result->communities.empty()) {
    // Anytime contract: any community the stopped run missed scores at most
    // the reported upper bound.
    Result<TopLResult> exact = detector.Search(q);
    ASSERT_TRUE(exact.ok());
    for (const CommunityResult& community : exact->communities) {
      bool returned = false;
      for (const CommunityResult& got : result->communities) {
        if (got.community.center == community.community.center) returned = true;
      }
      if (!returned) {
        EXPECT_LE(community.score(), result->score_upper_bound);
      }
    }
  }
}

TEST(ParallelSearchTest, ParallelScratchPoolGrowsToChunkConcurrencyOnly) {
  ThreadPool pool(4);
  const Graph g = MakeRandomGraph(13);
  const BuiltIndex built = BuildIndexFor(g);
  TopLDetector detector(g, built.pre(), built.tree);
  Query q;
  q.keywords = {0, 2, 5};
  q.k = 3;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 3;

  SearchControl control;
  control.pool = &pool;
  control.chunk_size = 2;
  for (int i = 0; i < 5; ++i) {
    Result<TopLResult> result = detector.Search(q, QueryOptions(), control);
    ASSERT_TRUE(result.ok());
  }
  // Scratch is recycled across waves and queries: bounded by pool width (+1
  // for the calling thread's help-first participation).
  EXPECT_LE(detector.pooled_scratch(), pool.num_threads() + 1);
}

}  // namespace
}  // namespace topl

#include "graph/graph.h"

#include <algorithm>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace topl {
namespace {

using testing::MakeGraph;
using testing::MakeKeywordGraph;

TEST(GraphTest, EmptyGraph) {
  GraphBuilder b(0);
  Result<Graph> g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 0u);
  EXPECT_EQ(g->NumEdges(), 0u);
}

TEST(GraphTest, SizesAndDegrees) {
  const Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}, {0, 2}});
  EXPECT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.NumEdges(), 4u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(2), 3u);
  EXPECT_EQ(g.Degree(3), 1u);
}

TEST(GraphTest, NeighborsSortedByTarget) {
  const Graph g = MakeGraph(5, {{2, 4}, {2, 0}, {2, 3}, {2, 1}});
  const auto arcs = g.Neighbors(2);
  ASSERT_EQ(arcs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(arcs.begin(), arcs.end(),
                             [](const Graph::Arc& a, const Graph::Arc& b) {
                               return a.to < b.to;
                             }));
}

TEST(GraphTest, HasEdgeSymmetric) {
  const Graph g = MakeGraph(4, {{0, 1}, {2, 3}});
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(3, 2));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(1, 3));
}

TEST(GraphTest, FindEdgeReturnsSharedId) {
  const Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  const EdgeId e01 = g.FindEdge(0, 1);
  ASSERT_NE(e01, kInvalidEdge);
  EXPECT_EQ(g.FindEdge(1, 0), e01);
  EXPECT_EQ(g.FindEdge(0, 2), kInvalidEdge);
}

TEST(GraphTest, EdgeEndpointsCanonicalOrder) {
  const Graph g = MakeGraph(3, {{2, 1}, {1, 0}});
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_LT(g.EdgeSource(e), g.EdgeTarget(e));
  }
}

TEST(GraphTest, DirectionalProbabilities) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, /*prob_uv=*/0.9, /*prob_vu=*/0.3);
  Result<Graph> g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->Neighbors(0).size(), 1u);
  ASSERT_EQ(g->Neighbors(1).size(), 1u);
  EXPECT_FLOAT_EQ(g->Neighbors(0)[0].prob, 0.9f);  // p(0→1)
  EXPECT_FLOAT_EQ(g->Neighbors(1)[0].prob, 0.3f);  // p(1→0)
}

TEST(GraphTest, DirectionalProbabilitiesSurviveEndpointSwap) {
  // AddEdge(u > v) must keep the orientation of the probabilities.
  GraphBuilder b(2);
  b.AddEdge(1, 0, /*prob_uv=*/0.9, /*prob_vu=*/0.3);  // p(1→0)=0.9, p(0→1)=0.3
  Result<Graph> g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_FLOAT_EQ(g->Neighbors(1)[0].prob, 0.9f);
  EXPECT_FLOAT_EQ(g->Neighbors(0)[0].prob, 0.3f);
}

TEST(GraphTest, KeywordsSortedAndQueryable) {
  const Graph g = MakeKeywordGraph(2, {{0, 1}}, {{5, 1, 3}, {}});
  const auto kw = g.Keywords(0);
  ASSERT_EQ(kw.size(), 3u);
  EXPECT_TRUE(std::is_sorted(kw.begin(), kw.end()));
  EXPECT_TRUE(g.HasKeyword(0, 3));
  EXPECT_FALSE(g.HasKeyword(0, 2));
  EXPECT_EQ(g.Keywords(1).size(), 0u);
}

TEST(GraphTest, KeywordDomainBound) {
  const Graph g = MakeKeywordGraph(2, {{0, 1}}, {{7}, {2}});
  EXPECT_EQ(g.KeywordDomainBound(), 8u);
  EXPECT_EQ(g.TotalKeywordCount(), 2u);
}

TEST(GraphTest, BothArcsShareEdgeId) {
  const Graph g = MakeGraph(3, {{0, 1}, {1, 2}, {0, 2}});
  for (VertexId u = 0; u < 3; ++u) {
    for (const Graph::Arc& arc : g.Neighbors(u)) {
      // The reverse arc carries the same EdgeId.
      bool found = false;
      for (const Graph::Arc& rev : g.Neighbors(arc.to)) {
        if (rev.to == u) {
          EXPECT_EQ(rev.edge, arc.edge);
          found = true;
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(GraphTest, MoveSemantics) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  Graph h = std::move(g);
  EXPECT_EQ(h.NumVertices(), 3u);
  EXPECT_EQ(h.NumEdges(), 2u);
}

// Accessors at the last valid id must read exactly the final CSR range —
// the off-by-one regression the debug bounds checks guard against.
TEST(GraphTest, AccessorsAtUpperBoundary) {
  const Graph g = MakeKeywordGraph(3, {{0, 1}, {1, 2}}, {{}, {}, {7}});
  EXPECT_EQ(g.Degree(2), 1u);
  ASSERT_EQ(g.Neighbors(2).size(), 1u);
  EXPECT_EQ(g.Neighbors(2)[0].to, 1u);
  ASSERT_EQ(g.Keywords(2).size(), 1u);
  EXPECT_EQ(g.Keywords(2)[0], 7u);
}

// Out-of-range vertex ids used to read past the offsets array (UB); with
// TOPL_DCHECK they die loudly in debug builds. NDEBUG builds compile the
// check out (no release cost), so the death expectation only runs in debug.
TEST(GraphDeathTest, OutOfRangeVertexDiesInDebug) {
#ifdef NDEBUG
  GTEST_SKIP() << "TOPL_DCHECK is compiled out under NDEBUG";
#else
  const Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  EXPECT_DEATH((void)g.Degree(3), "vertex id out of range");
  EXPECT_DEATH((void)g.Neighbors(57), "vertex id out of range");
  EXPECT_DEATH((void)g.Keywords(3), "vertex id out of range");
#endif
}

}  // namespace
}  // namespace topl

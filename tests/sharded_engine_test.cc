// The sharded-serving contract: a ShardedEngine's TopL and DTopL answers are
// byte-identical to a single Engine over the whole graph — same communities,
// same member/edge lists, bit-identical scores — at every shard count, after
// any interleaved ApplyUpdate stream, including deletes and inserts that
// cross shard-ownership boundaries. A 20-graph × {1,2,4,8}-shard sweep
// enforces exactly that, alongside the artifact-family round-trip (shard
// manifests reject mixed builds), per-shard result caches, and a concurrent
// search-vs-update race for TSan.

#include "shard/sharded_engine.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "topl.h"

namespace topl {
namespace {

PrecomputeOptions SweepPrecomputeOptions() {
  PrecomputeOptions options;
  options.r_max = 2;
  options.signature_bits = 64;
  return options;
}

Graph CopyGraph(const Graph& g) {
  Result<Graph> copy = ApplyDelta(g, GraphDelta());
  EXPECT_TRUE(copy.ok()) << copy.status().ToString();
  return std::move(copy).value();
}

void ExpectSameCommunities(const std::vector<CommunityResult>& got,
                           const std::vector<CommunityResult>& want,
                           const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].community.center, want[i].community.center) << label;
    EXPECT_EQ(got[i].community.vertices, want[i].community.vertices) << label;
    EXPECT_EQ(got[i].community.edges, want[i].community.edges) << label;
    EXPECT_EQ(got[i].influence.vertices, want[i].influence.vertices) << label;
    EXPECT_EQ(got[i].influence.cpp, want[i].influence.cpp) << label;
    EXPECT_EQ(got[i].score(), want[i].score()) << label;
  }
}

/// Runs the same TopL + DTopL queries through the sharded coordinator and
/// through the single reference engine, and demands identical answers.
void ExpectShardedMatchesSingle(ShardedEngine& sharded, Engine& single,
                                const std::vector<Query>& queries,
                                const std::string& label) {
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const std::string where = label + " query#" + std::to_string(qi);
    Result<TopLResult> got = sharded.Search(queries[qi]);
    Result<TopLResult> want = single.Search(queries[qi]);
    ASSERT_TRUE(got.ok()) << where << ": " << got.status().ToString();
    ASSERT_TRUE(want.ok()) << where << ": " << want.status().ToString();
    EXPECT_FALSE(got->truncated) << where;
    EXPECT_EQ(got->score_upper_bound, want->score_upper_bound) << where;
    ExpectSameCommunities(got->communities, want->communities, where);

    Result<DTopLResult> got_d = sharded.SearchDiversified(queries[qi]);
    Result<DTopLResult> want_d = single.SearchDiversified(queries[qi]);
    ASSERT_TRUE(got_d.ok()) << where << ": " << got_d.status().ToString();
    ASSERT_TRUE(want_d.ok()) << where << ": " << want_d.status().ToString();
    EXPECT_EQ(got_d->diversity_score, want_d->diversity_score) << where;
    EXPECT_EQ(got_d->pool_centers, want_d->pool_centers) << where;
    EXPECT_EQ(got_d->pool_floor, want_d->pool_floor) << where;
    EXPECT_EQ(got_d->pool_full, want_d->pool_full) << where;
    ExpectSameCommunities(got_d->communities, want_d->communities,
                          where + " (dtopl)");
  }
}

GraphDelta MakeSweepDelta(const Graph& g, Rng& rng, int ops) {
  RandomDeltaOptions options;
  options.num_ops = ops;
  options.keyword_domain = 12;
  return MakeRandomDelta(g, rng, options);
}

std::vector<KeywordId> SampleQueryKeywords(const Graph& g, Rng& rng,
                                           std::uint32_t count) {
  std::vector<KeywordId> out;
  for (int attempt = 0; out.size() < count && attempt < 1000; ++attempt) {
    const VertexId v = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    const auto kws = g.Keywords(v);
    if (kws.empty()) continue;
    const KeywordId w = kws[rng.NextBounded(kws.size())];
    if (std::find(out.begin(), out.end(), w) == out.end()) out.push_back(w);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Query> SampleQueries(const Graph& g, Rng& rng, int count) {
  std::vector<Query> queries;
  for (int qi = 0; qi < count; ++qi) {
    Query q;
    q.keywords = SampleQueryKeywords(g, rng, 2);
    if (q.keywords.empty()) continue;
    q.k = 3 + static_cast<std::uint32_t>(rng.NextBounded(2));
    q.radius = 1 + static_cast<std::uint32_t>(rng.NextBounded(2));
    q.theta = 0.2;
    q.top_l = 3;
    queries.push_back(std::move(q));
  }
  return queries;
}

// The acceptance sweep: 20 random graphs × shard counts {1,2,4,8}, each
// advanced through interleaved random delta batches. After every batch,
// every sharded deployment must answer exactly like the single engine that
// received the same stream.
TEST(ShardedSweepTest, ShardedEqualsSingleAcrossShardCountsAndUpdates) {
  const std::vector<std::uint32_t> shard_counts = {1, 2, 4, 8};
  for (std::uint64_t graph_seed = 0; graph_seed < 20; ++graph_seed) {
    ErdosRenyiOptions gen;
    gen.num_vertices = 48 + 4 * graph_seed;  // 48..124 vertices
    gen.edge_prob = 0.08;
    gen.seed = 1000 + graph_seed;
    gen.keywords.domain_size = 12;
    gen.keywords.keywords_per_vertex = 3;
    Result<Graph> graph = MakeErdosRenyi(gen);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();

    EngineOptions single_options;
    single_options.precompute = SweepPrecomputeOptions();
    single_options.num_threads = 2;
    Result<std::unique_ptr<Engine>> single =
        Engine::FromGraph(CopyGraph(*graph), single_options);
    ASSERT_TRUE(single.ok()) << single.status().ToString();

    std::vector<std::unique_ptr<ShardedEngine>> sharded;
    for (std::uint32_t num_shards : shard_counts) {
      ShardedEngineOptions options;
      options.num_shards = num_shards;
      options.engine.precompute = SweepPrecomputeOptions();
      options.engine.num_threads = 1;
      Result<std::unique_ptr<ShardedEngine>> deployment =
          ShardedEngine::FromGraph(CopyGraph(*graph), options);
      ASSERT_TRUE(deployment.ok()) << deployment.status().ToString();
      sharded.push_back(std::move(deployment).value());
    }

    Rng rng(7000 + graph_seed);
    for (int batch = 0; batch < 3; ++batch) {
      const std::string label = "graph#" + std::to_string(graph_seed) +
                                " batch#" + std::to_string(batch);
      if (batch > 0) {
        const std::shared_ptr<const EngineSnapshot> snap =
            (*single)->snapshot();
        const GraphDelta delta = MakeSweepDelta(*snap->graph, rng, 6);
        Result<RebuildScope> single_scope = (*single)->ApplyUpdate(delta);
        ASSERT_TRUE(single_scope.ok()) << single_scope.status().ToString();
        for (std::size_t d = 0; d < sharded.size(); ++d) {
          Result<RebuildScope> scope = sharded[d]->ApplyUpdate(delta);
          ASSERT_TRUE(scope.ok())
              << label << " shards=" << shard_counts[d] << ": "
              << scope.status().ToString();
          EXPECT_EQ(scope->num_vertices, snap->graph->NumVertices()) << label;
        }
      }
      const std::vector<Query> queries =
          SampleQueries(*(*single)->snapshot()->graph, rng, 3);
      for (std::size_t d = 0; d < sharded.size(); ++d) {
        ExpectShardedMatchesSingle(
            *sharded[d], **single, queries,
            label + " shards=" + std::to_string(shard_counts[d]));
      }
    }
  }
}

// Deltas aimed at shard boundaries: deletes of edges whose endpoints live on
// different shards (the "halo" case a partial-replica design would get
// wrong) and inserts that newly bridge two shards. The 8-way deployment must
// keep answering exactly like the single engine.
TEST(ShardedEngineTest, CrossShardBoundaryDeltas) {
  ErdosRenyiOptions gen;
  gen.num_vertices = 96;
  gen.edge_prob = 0.08;
  gen.seed = 424;
  gen.keywords.domain_size = 12;
  gen.keywords.keywords_per_vertex = 3;
  Result<Graph> graph = MakeErdosRenyi(gen);
  ASSERT_TRUE(graph.ok());

  EngineOptions single_options;
  single_options.precompute = SweepPrecomputeOptions();
  single_options.num_threads = 2;
  Result<std::unique_ptr<Engine>> single =
      Engine::FromGraph(CopyGraph(*graph), single_options);
  ASSERT_TRUE(single.ok());

  ShardedEngineOptions options;
  options.num_shards = 8;
  options.engine.precompute = SweepPrecomputeOptions();
  options.engine.num_threads = 1;
  Result<std::unique_ptr<ShardedEngine>> sharded =
      ShardedEngine::FromGraph(CopyGraph(*graph), options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  const ShardPartition& partition = (*sharded)->partition();

  // Delete up to 4 cross-owner edges.
  GraphDelta delta;
  const Graph& g = *graph;
  int deletes = 0;
  for (VertexId u = 0; u < g.NumVertices() && deletes < 4; ++u) {
    for (const auto& edge : g.Neighbors(u)) {
      if (edge.to <= u) continue;
      if (partition.owner[u] != partition.owner[edge.to]) {
        delta.DeleteEdge(u, edge.to);
        if (++deletes >= 4) break;
      }
    }
  }
  ASSERT_GT(deletes, 0) << "no cross-shard edge found";
  // Insert one new edge bridging two shards (grow path across a boundary).
  bool inserted = false;
  for (VertexId u = 0; u < g.NumVertices() && !inserted; ++u) {
    for (VertexId v = u + 1; v < g.NumVertices(); ++v) {
      if (g.HasEdge(u, v)) continue;
      if (partition.owner[u] == partition.owner[v]) continue;
      delta.InsertEdge(u, v, 0.55);
      inserted = true;
      break;
    }
  }
  ASSERT_TRUE(inserted);

  Result<RebuildScope> single_scope = (*single)->ApplyUpdate(delta);
  ASSERT_TRUE(single_scope.ok()) << single_scope.status().ToString();
  Result<RebuildScope> sharded_scope = (*sharded)->ApplyUpdate(delta);
  ASSERT_TRUE(sharded_scope.ok()) << sharded_scope.status().ToString();

  Rng rng(11);
  const std::vector<Query> queries =
      SampleQueries(*(*single)->snapshot()->graph, rng, 4);
  ASSERT_FALSE(queries.empty());
  ExpectShardedMatchesSingle(**sharded, **single, queries, "cross-shard");
}

// Offline artifact family: BuildArtifacts → Open must serve exactly like an
// in-memory build, artifacts carry the shard manifest, and families that
// were not cut from the same partition are rejected before serving.
TEST(ShardedEngineTest, ArtifactFamilyRoundTrip) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("topl_sharded_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  ErdosRenyiOptions gen;
  gen.num_vertices = 64;
  gen.edge_prob = 0.09;
  gen.seed = 77;
  gen.keywords.domain_size = 12;
  Result<Graph> graph = MakeErdosRenyi(gen);
  ASSERT_TRUE(graph.ok());

  ShardedEngineOptions options;
  options.num_shards = 4;
  options.engine.precompute = SweepPrecomputeOptions();
  options.engine.num_threads = 1;

  const std::string prefix = (dir / "family.idx").string();
  ASSERT_TRUE(
      ShardedEngine::BuildArtifacts(*graph, options, prefix, false).ok());

  // Every member carries its manifest, visible to Inspect.
  for (std::uint32_t s = 0; s < 4; ++s) {
    Result<ArtifactInfo> info =
        ArtifactReader::Inspect(ShardedEngine::ShardArtifactPath(prefix, s));
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_TRUE(info->has_shard_map);
    EXPECT_EQ(info->num_shards, 4u);
    EXPECT_EQ(info->shard_index, s);
  }

  Result<std::unique_ptr<ShardedEngine>> opened =
      ShardedEngine::Open(prefix, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Result<std::unique_ptr<ShardedEngine>> built =
      ShardedEngine::FromGraph(CopyGraph(*graph), options);
  ASSERT_TRUE(built.ok());

  Rng rng(5);
  std::vector<Query> queries = SampleQueries(*graph, rng, 3);
  ASSERT_FALSE(queries.empty());
  for (const Query& q : queries) {
    Result<TopLResult> got = (*opened)->Search(q);
    Result<TopLResult> want = (*built)->Search(q);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    ExpectSameCommunities(got->communities, want->communities, "round-trip");
  }

  // Wrong shard count: the family says 4, the caller asks for 2.
  {
    ShardedEngineOptions two = options;
    two.num_shards = 2;
    Result<std::unique_ptr<ShardedEngine>> bad =
        ShardedEngine::Open(prefix, two);
    EXPECT_FALSE(bad.ok());
  }

  // Unsharded member: a plain artifact dropped into the family slot.
  {
    Result<PrecomputedData> pre =
        PrecomputedData::Build(*graph, options.engine.precompute);
    ASSERT_TRUE(pre.ok());
    Result<TreeIndex> tree = TreeIndex::Build(*graph, *pre);
    ASSERT_TRUE(tree.ok());
    const std::string mixed = (dir / "mixed.idx").string();
    for (std::uint32_t s = 0; s < 4; ++s) {
      fs::copy_file(ShardedEngine::ShardArtifactPath(prefix, s),
                    ShardedEngine::ShardArtifactPath(mixed, s));
    }
    ASSERT_TRUE(ArtifactWriter::Write(
                    *graph, *pre, *tree,
                    ShardedEngine::ShardArtifactPath(mixed, 2))
                    .ok());
    Result<std::unique_ptr<ShardedEngine>> bad =
        ShardedEngine::Open(mixed, options);
    EXPECT_FALSE(bad.ok());
  }

  // Foreign member: shard 1 replaced by the same position of a family built
  // from a different graph — the partition digests cannot agree.
  {
    ErdosRenyiOptions other_gen = gen;
    other_gen.seed = 78;
    other_gen.num_vertices = 60;
    Result<Graph> other = MakeErdosRenyi(other_gen);
    ASSERT_TRUE(other.ok());
    const std::string foreign = (dir / "foreign.idx").string();
    ASSERT_TRUE(
        ShardedEngine::BuildArtifacts(*other, options, foreign, false).ok());
    const std::string franken = (dir / "franken.idx").string();
    for (std::uint32_t s = 0; s < 4; ++s) {
      fs::copy_file(ShardedEngine::ShardArtifactPath(
                        s == 1 ? foreign : prefix, s),
                    ShardedEngine::ShardArtifactPath(franken, s));
    }
    Result<std::unique_ptr<ShardedEngine>> bad =
        ShardedEngine::Open(franken, options);
    EXPECT_FALSE(bad.ok());
  }

  fs::remove_all(dir);
}

// Per-shard result caches: answers served out of a shard's cache stay exact,
// and an update's shard-local dirty set invalidates exactly the affected
// shards' entries — repeated queries after the update match the single
// engine again.
TEST(ShardedEngineTest, PerShardResultCachesStayExact) {
  ErdosRenyiOptions gen;
  gen.num_vertices = 80;
  gen.edge_prob = 0.08;
  gen.seed = 99;
  gen.keywords.domain_size = 12;
  Result<Graph> graph = MakeErdosRenyi(gen);
  ASSERT_TRUE(graph.ok());

  EngineOptions single_options;
  single_options.precompute = SweepPrecomputeOptions();
  single_options.num_threads = 2;
  Result<std::unique_ptr<Engine>> single =
      Engine::FromGraph(CopyGraph(*graph), single_options);
  ASSERT_TRUE(single.ok());

  ShardedEngineOptions options;
  options.num_shards = 4;
  options.engine.precompute = SweepPrecomputeOptions();
  options.engine.num_threads = 1;
  options.engine.enable_result_cache = true;
  Result<std::unique_ptr<ShardedEngine>> sharded =
      ShardedEngine::FromGraph(CopyGraph(*graph), options);
  ASSERT_TRUE(sharded.ok());
  EXPECT_TRUE((*sharded)->Stats().cache_enabled);

  Rng rng(13);
  const std::vector<Query> queries = SampleQueries(*graph, rng, 3);
  ASSERT_FALSE(queries.empty());
  // First pass fills the shard caches, second is served (partly) from them.
  ExpectShardedMatchesSingle(**sharded, **single, queries, "cache-fill");
  ExpectShardedMatchesSingle(**sharded, **single, queries, "cache-hit");

  const GraphDelta delta =
      MakeSweepDelta(*(*single)->snapshot()->graph, rng, 6);
  ASSERT_TRUE((*single)->ApplyUpdate(delta).ok());
  ASSERT_TRUE((*sharded)->ApplyUpdate(delta).ok());
  ExpectShardedMatchesSingle(**sharded, **single, queries, "post-update");
}

// Progressive queries through the coordinator: without a deadline the merged
// stream finishes with exactly the plain answer; the final callback fires
// once with the merged communities.
TEST(ShardedEngineTest, ProgressiveMatchesPlainSearch) {
  ErdosRenyiOptions gen;
  gen.num_vertices = 72;
  gen.edge_prob = 0.08;
  gen.seed = 300;
  gen.keywords.domain_size = 12;
  Result<Graph> graph = MakeErdosRenyi(gen);
  ASSERT_TRUE(graph.ok());

  ShardedEngineOptions options;
  options.num_shards = 4;
  options.engine.precompute = SweepPrecomputeOptions();
  options.engine.num_threads = 1;
  Result<std::unique_ptr<ShardedEngine>> sharded =
      ShardedEngine::FromGraph(CopyGraph(*graph), options);
  ASSERT_TRUE(sharded.ok());

  Rng rng(17);
  const std::vector<Query> queries = SampleQueries(*graph, rng, 3);
  ASSERT_FALSE(queries.empty());
  for (const Query& q : queries) {
    int callbacks = 0;
    std::vector<CommunityResult> streamed;
    Result<TopLResult> progressive = (*sharded)->SearchProgressive(
        q, ProgressiveOptions{}, [&](const ProgressiveUpdate& update) {
          ++callbacks;
          streamed.assign(update.communities.begin(),
                          update.communities.end());
          return true;
        });
    Result<TopLResult> plain = (*sharded)->Search(q);
    ASSERT_TRUE(progressive.ok()) << progressive.status().ToString();
    ASSERT_TRUE(plain.ok());
    EXPECT_EQ(callbacks, 1);
    EXPECT_FALSE(progressive->truncated);
    ExpectSameCommunities(progressive->communities, plain->communities,
                          "progressive-vs-plain");
    ExpectSameCommunities(streamed, plain->communities, "streamed");
  }
}

// Configuration errors surface like the single engine's.
TEST(ShardedEngineTest, RejectsInvalidConfigurations) {
  ErdosRenyiOptions gen;
  gen.num_vertices = 24;
  gen.seed = 3;
  gen.keywords.domain_size = 8;
  Result<Graph> graph = MakeErdosRenyi(gen);
  ASSERT_TRUE(graph.ok());

  ShardedEngineOptions zero;
  zero.num_shards = 0;
  EXPECT_FALSE(ShardedEngine::FromGraph(CopyGraph(*graph), zero).ok());

  ShardedEngineOptions too_many;
  too_many.num_shards = 25;
  EXPECT_FALSE(ShardedEngine::FromGraph(CopyGraph(*graph), too_many).ok());

  ShardedEngineOptions options;
  options.num_shards = 4;
  options.engine.precompute = SweepPrecomputeOptions();
  Result<std::unique_ptr<ShardedEngine>> sharded =
      ShardedEngine::FromGraph(CopyGraph(*graph), options);
  ASSERT_TRUE(sharded.ok());

  Query bad_radius;
  bad_radius.keywords = {0};
  bad_radius.radius = 9;  // > r_max
  Result<TopLResult> r = (*sharded)->Search(bad_radius);
  EXPECT_FALSE(r.ok());

  Query no_keywords;  // fails Query::Validate
  Result<TopLResult> v = (*sharded)->Search(no_keywords);
  EXPECT_FALSE(v.ok());
}

// The TSan target: queries streaming through the coordinator while updates
// fan out across every shard's engine underneath them. Every query must
// succeed against whichever per-shard epochs it pinned.
TEST(ShardedEngineTest, ConcurrentSearchAndUpdate) {
  ErdosRenyiOptions gen;
  gen.num_vertices = 120;
  gen.edge_prob = 0.06;
  gen.seed = 31;
  gen.keywords.domain_size = 12;
  Result<Graph> graph = MakeErdosRenyi(gen);
  ASSERT_TRUE(graph.ok());
  const Graph base = CopyGraph(*graph);

  ShardedEngineOptions options;
  options.num_shards = 4;
  options.engine.precompute = SweepPrecomputeOptions();
  options.engine.num_threads = 1;
  options.engine.enable_result_cache = true;
  Result<std::unique_ptr<ShardedEngine>> sharded =
      ShardedEngine::FromGraph(std::move(*graph), options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  Rng rng(77);
  Query q;
  q.keywords = SampleQueryKeywords(base, rng, 2);
  ASSERT_FALSE(q.keywords.empty());
  q.k = 3;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 3;

  constexpr int kUpdates = 4;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&]() {
      while (!stop.load(std::memory_order_relaxed)) {
        Result<TopLResult> answer = (*sharded)->Search(q);
        if (!answer.ok()) failures.fetch_add(1);
        served.fetch_add(1);
      }
    });
  }

  for (int u = 0; u < kUpdates; ++u) {
    // This thread is the only writer, so the coordinator snapshot cannot
    // change between drawing the delta and applying it.
    const std::shared_ptr<const EngineSnapshot> current =
        (*sharded)->snapshot();
    Rng update_rng(500 + u);
    const GraphDelta delta = MakeSweepDelta(*current->graph, update_rng, 4);
    Result<RebuildScope> scope = (*sharded)->ApplyUpdate(delta);
    ASSERT_TRUE(scope.ok()) << scope.status().ToString();
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0u);
  const EngineStats stats = (*sharded)->Stats();
  EXPECT_EQ(stats.updates_applied, kUpdates);
  EXPECT_EQ(stats.snapshot_epoch, kUpdates);
  // Every search was routed somewhere.
  const std::vector<std::uint64_t> ops = (*sharded)->ShardOps();
  std::uint64_t routed = 0;
  for (std::uint64_t o : ops) routed += o;
  EXPECT_GT(routed, 0u);
}

}  // namespace
}  // namespace topl

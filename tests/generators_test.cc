#include "graph/generators.h"

#include <cmath>

#include "graph/connectivity.h"
#include "gtest/gtest.h"

namespace topl {
namespace {

TEST(SmallWorldTest, SizesMatchTheModel) {
  SmallWorldOptions opts;
  opts.num_vertices = 500;
  opts.ring_neighbors = 6;
  opts.shortcut_prob = 0.167;
  Result<Graph> g = MakeSmallWorld(opts);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumVertices(), 500u);
  // Ring lattice contributes n * (m/2) edges; shortcuts add ~ μ more per
  // lattice edge.
  const std::size_t lattice = 500 * 3;
  EXPECT_GE(g->NumEdges(), lattice);
  EXPECT_LE(g->NumEdges(), lattice + lattice / 2);
}

TEST(SmallWorldTest, ConnectedByConstruction) {
  SmallWorldOptions opts;
  opts.num_vertices = 300;
  Result<Graph> g = MakeSmallWorld(opts);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(IsConnected(*g));
}

TEST(SmallWorldTest, DeterministicForSeed) {
  SmallWorldOptions opts;
  opts.num_vertices = 200;
  opts.seed = 99;
  Result<Graph> a = MakeSmallWorld(opts);
  Result<Graph> b = MakeSmallWorld(opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->NumEdges(), b->NumEdges());
  for (EdgeId e = 0; e < a->NumEdges(); ++e) {
    EXPECT_EQ(a->EdgeSource(e), b->EdgeSource(e));
    EXPECT_EQ(a->EdgeTarget(e), b->EdgeTarget(e));
  }
  for (VertexId v = 0; v < a->NumVertices(); ++v) {
    ASSERT_EQ(a->Keywords(v).size(), b->Keywords(v).size());
  }
}

TEST(SmallWorldTest, WeightsInConfiguredRange) {
  SmallWorldOptions opts;
  opts.num_vertices = 100;
  opts.weights.min_weight = 0.5;
  opts.weights.max_weight = 0.6;
  Result<Graph> g = MakeSmallWorld(opts);
  ASSERT_TRUE(g.ok());
  for (VertexId v = 0; v < g->NumVertices(); ++v) {
    for (const Graph::Arc& arc : g->Neighbors(v)) {
      EXPECT_GE(arc.prob, 0.5f);
      EXPECT_LT(arc.prob, 0.6f + 1e-6f);
    }
  }
}

TEST(SmallWorldTest, KeywordCountsPerVertex) {
  SmallWorldOptions opts;
  opts.num_vertices = 100;
  opts.keywords.keywords_per_vertex = 4;
  opts.keywords.domain_size = 20;
  Result<Graph> g = MakeSmallWorld(opts);
  ASSERT_TRUE(g.ok());
  for (VertexId v = 0; v < g->NumVertices(); ++v) {
    EXPECT_EQ(g->Keywords(v).size(), 4u);
    for (KeywordId w : g->Keywords(v)) EXPECT_LT(w, 20u);
  }
}

TEST(SmallWorldTest, RejectsBadParameters) {
  SmallWorldOptions opts;
  opts.num_vertices = 2;
  EXPECT_FALSE(MakeSmallWorld(opts).ok());
  opts.num_vertices = 100;
  opts.ring_neighbors = 1;  // half = 0
  EXPECT_FALSE(MakeSmallWorld(opts).ok());
  opts.ring_neighbors = 6;
  opts.shortcut_prob = 1.5;
  EXPECT_FALSE(MakeSmallWorld(opts).ok());
  opts.shortcut_prob = 0.1;
  opts.keywords.keywords_per_vertex = 100;
  opts.keywords.domain_size = 10;
  EXPECT_FALSE(MakeSmallWorld(opts).ok());
}

TEST(PowerlawClusterTest, SizesAndConnectivity) {
  PowerlawClusterOptions opts;
  opts.num_vertices = 400;
  opts.edges_per_vertex = 3;
  Result<Graph> g = MakePowerlawCluster(opts);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumVertices(), 400u);
  EXPECT_TRUE(IsConnected(*g));
  // ~3 edges per arriving vertex.
  EXPECT_GE(g->NumEdges(), 350u);
  EXPECT_LE(g->NumEdges(), 3 * 400u);
}

TEST(PowerlawClusterTest, SkewedDegrees) {
  PowerlawClusterOptions opts;
  opts.num_vertices = 2000;
  opts.edges_per_vertex = 3;
  opts.triangle_prob = 0.5;
  Result<Graph> g = MakePowerlawCluster(opts);
  ASSERT_TRUE(g.ok());
  std::size_t max_degree = 0;
  for (VertexId v = 0; v < g->NumVertices(); ++v) {
    max_degree = std::max(max_degree, g->Degree(v));
  }
  const double avg_degree = 2.0 * g->NumEdges() / g->NumVertices();
  // Preferential attachment produces hubs far above the average degree.
  EXPECT_GT(static_cast<double>(max_degree), 5.0 * avg_degree);
}

TEST(PowerlawClusterTest, TriangleProbRaisesClustering) {
  auto triangle_count = [](const Graph& g) {
    std::size_t triangles = 0;
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      const VertexId u = g.EdgeSource(e);
      const VertexId v = g.EdgeTarget(e);
      for (const Graph::Arc& arc : g.Neighbors(u)) {
        if (arc.to != v && g.HasEdge(arc.to, v)) ++triangles;
      }
    }
    return triangles / 3;
  };
  PowerlawClusterOptions low;
  low.num_vertices = 1500;
  low.triangle_prob = 0.0;
  low.seed = 5;
  PowerlawClusterOptions high = low;
  high.triangle_prob = 0.9;
  Result<Graph> g_low = MakePowerlawCluster(low);
  Result<Graph> g_high = MakePowerlawCluster(high);
  ASSERT_TRUE(g_low.ok());
  ASSERT_TRUE(g_high.ok());
  EXPECT_GT(triangle_count(*g_high), 2 * triangle_count(*g_low));
}

TEST(ErdosRenyiTest, RingKeepsItConnected) {
  ErdosRenyiOptions opts;
  opts.num_vertices = 150;
  opts.edge_prob = 0.01;
  opts.add_spanning_ring = true;
  Result<Graph> g = MakeErdosRenyi(opts);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(IsConnected(*g));
}

TEST(ErdosRenyiTest, DensityTracksProbability) {
  ErdosRenyiOptions opts;
  opts.num_vertices = 200;
  opts.edge_prob = 0.1;
  opts.add_spanning_ring = false;
  Result<Graph> g = MakeErdosRenyi(opts);
  ASSERT_TRUE(g.ok());
  const double expected = 0.1 * 200 * 199 / 2;
  EXPECT_GT(g->NumEdges(), expected * 0.8);
  EXPECT_LT(g->NumEdges(), expected * 1.2);
}

TEST(KeywordDistributionTest, GaussianConcentratesNearMean) {
  SmallWorldOptions opts;
  opts.num_vertices = 3000;
  opts.keywords.distribution = KeywordDistribution::kGaussian;
  opts.keywords.domain_size = 50;
  opts.keywords.keywords_per_vertex = 1;
  Result<Graph> g = MakeSmallWorld(opts);
  ASSERT_TRUE(g.ok());
  std::size_t near_mean = 0;
  std::size_t total = 0;
  for (VertexId v = 0; v < g->NumVertices(); ++v) {
    for (KeywordId w : g->Keywords(v)) {
      ++total;
      if (w >= 9 && w <= 41) ++near_mean;  // within ~2 stddev of mean 25
    }
  }
  EXPECT_GT(static_cast<double>(near_mean) / total, 0.9);
}

TEST(KeywordDistributionTest, ZipfFavorsLowIds) {
  SmallWorldOptions opts;
  opts.num_vertices = 3000;
  opts.keywords.distribution = KeywordDistribution::kZipf;
  opts.keywords.domain_size = 50;
  opts.keywords.keywords_per_vertex = 1;
  Result<Graph> g = MakeSmallWorld(opts);
  ASSERT_TRUE(g.ok());
  std::size_t low = 0;
  std::size_t total = 0;
  for (VertexId v = 0; v < g->NumVertices(); ++v) {
    for (KeywordId w : g->Keywords(v)) {
      ++total;
      if (w < 5) ++low;
    }
  }
  EXPECT_GT(static_cast<double>(low) / total, 0.5);
}

TEST(PowerlawClusterTest, DeterministicForSeed) {
  PowerlawClusterOptions opts;
  opts.num_vertices = 300;
  opts.seed = 77;
  Result<Graph> a = MakePowerlawCluster(opts);
  Result<Graph> b = MakePowerlawCluster(opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->NumEdges(), b->NumEdges());
  for (EdgeId e = 0; e < a->NumEdges(); ++e) {
    EXPECT_EQ(a->EdgeSource(e), b->EdgeSource(e));
    EXPECT_EQ(a->EdgeTarget(e), b->EdgeTarget(e));
  }
}

TEST(PowerlawClusterTest, RejectsBadParameters) {
  PowerlawClusterOptions opts;
  opts.num_vertices = 2;
  opts.edges_per_vertex = 3;
  EXPECT_FALSE(MakePowerlawCluster(opts).ok());
  opts = PowerlawClusterOptions();
  opts.edges_per_vertex = 0;
  EXPECT_FALSE(MakePowerlawCluster(opts).ok());
  opts = PowerlawClusterOptions();
  opts.triangle_prob = -0.5;
  EXPECT_FALSE(MakePowerlawCluster(opts).ok());
}

TEST(StandInTest, DblpAndAmazonLikeBuild) {
  Result<Graph> dblp = MakeDblpLike(1000, 1);
  Result<Graph> amazon = MakeAmazonLike(1000, 1);
  ASSERT_TRUE(dblp.ok());
  ASSERT_TRUE(amazon.ok());
  EXPECT_TRUE(IsConnected(*dblp));
  EXPECT_TRUE(IsConnected(*amazon));
  // Average degrees in the ballpark of the SNAP originals (~6.6 / ~5.5).
  const double dblp_avg = 2.0 * dblp->NumEdges() / dblp->NumVertices();
  EXPECT_GT(dblp_avg, 4.0);
  EXPECT_LT(dblp_avg, 9.0);
}

}  // namespace
}  // namespace topl

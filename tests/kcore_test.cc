#include "truss/kcore.h"

#include <algorithm>

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace topl {
namespace {

using testing::MakeClique;
using testing::MakeGraph;

TEST(CoreDecompositionTest, CliqueCores) {
  const Graph g = MakeClique(5);
  const auto core = CoreDecomposition(g);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(core[v], 4u);
}

TEST(CoreDecompositionTest, PathCores) {
  const Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto core = CoreDecomposition(g);
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(core[v], 1u);
}

TEST(CoreDecompositionTest, CliqueWithTail) {
  // K4 {0..3} + tail 3-4-5.
  const Graph g =
      MakeGraph(6, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}});
  const auto core = CoreDecomposition(g);
  EXPECT_EQ(core[0], 3u);
  EXPECT_EQ(core[3], 3u);
  EXPECT_EQ(core[4], 1u);
  EXPECT_EQ(core[5], 1u);
}

TEST(CoreDecompositionTest, IsolatedVertex) {
  const Graph g = MakeGraph(3, {{0, 1}});
  const auto core = CoreDecomposition(g);
  EXPECT_EQ(core[2], 0u);
}

// Property: the k-core invariant — in the subgraph induced by vertices with
// core >= k, every vertex has degree >= k.
class CorePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorePropertyTest, CoreInvariantHolds) {
  ErdosRenyiOptions opts;
  opts.num_vertices = 70;
  opts.edge_prob = 0.12;
  opts.seed = GetParam();
  Result<Graph> g = MakeErdosRenyi(opts);
  ASSERT_TRUE(g.ok());
  const auto core = CoreDecomposition(*g);
  const std::uint32_t kmax = *std::max_element(core.begin(), core.end());
  for (std::uint32_t k = 1; k <= kmax; ++k) {
    for (VertexId v = 0; v < g->NumVertices(); ++v) {
      if (core[v] < k) continue;
      std::uint32_t in_degree = 0;
      for (const Graph::Arc& arc : g->Neighbors(v)) {
        if (core[arc.to] >= k) ++in_degree;
      }
      EXPECT_GE(in_degree, k) << "vertex " << v << " at k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorePropertyTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(KCoreCommunityTest, CliqueCommunity) {
  const Graph g = MakeClique(5);
  const auto community = KCoreCommunity(g, 0, 4, 2);
  EXPECT_EQ(community.size(), 5u);
}

TEST(KCoreCommunityTest, TailExcluded) {
  // K4 + tail: the 3-core around vertex 0 is exactly the K4.
  const Graph g =
      MakeGraph(6, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}});
  const auto community = KCoreCommunity(g, 0, 3, 3);
  EXPECT_EQ(community, (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(KCoreCommunityTest, CenterPeeledAwayGivesEmpty) {
  const Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_TRUE(KCoreCommunity(g, 0, 2, 3).empty());
}

TEST(KCoreCommunityTest, RadiusLimitsCommunity) {
  // Long path with k=1: radius bounds how far the community extends.
  const Graph g = MakeGraph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  const auto community = KCoreCommunity(g, 2, 1, 2);
  EXPECT_EQ(community, (std::vector<VertexId>{0, 1, 2, 3, 4}));
}

TEST(KCoreCommunityTest, DisconnectedCoreKeepsCenterSide) {
  // Two K4s joined by a path through low-degree vertices: the 3-core within
  // radius contains both cliques, but only the center's component counts.
  Graph g = MakeGraph(9, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},  // K4 a
                          {5, 6}, {5, 7}, {5, 8}, {6, 7}, {6, 8}, {7, 8},  // K4 b
                          {3, 4}, {4, 5}});                                // bridge
  const auto community = KCoreCommunity(g, 0, 3, 10);
  EXPECT_EQ(community, (std::vector<VertexId>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace topl

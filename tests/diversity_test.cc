#include "influence/diversity.h"

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace topl {
namespace {

InfluencedCommunity Make(std::vector<VertexId> vertices, std::vector<double> cpp) {
  InfluencedCommunity c;
  c.vertices = std::move(vertices);
  c.cpp = std::move(cpp);
  for (double p : c.cpp) c.score += p;
  return c;
}

// Random influenced communities for property sweeps.
std::vector<InfluencedCommunity> RandomCommunities(std::uint64_t seed, int count,
                                                   int universe) {
  Rng rng(seed);
  std::vector<InfluencedCommunity> out;
  for (int i = 0; i < count; ++i) {
    InfluencedCommunity c;
    const int size = 1 + static_cast<int>(rng.NextBounded(universe));
    for (int j = 0; j < size; ++j) {
      const VertexId v = static_cast<VertexId>(rng.NextBounded(universe));
      if (std::find(c.vertices.begin(), c.vertices.end(), v) != c.vertices.end()) {
        continue;
      }
      c.vertices.push_back(v);
      c.cpp.push_back(0.1 + 0.9 * rng.NextDouble());
      c.score += c.cpp.back();
    }
    out.push_back(std::move(c));
  }
  return out;
}

TEST(DiversityOracleTest, SingleCommunityScoresItself) {
  DiversityOracle oracle;
  const auto c = Make({1, 2, 3}, {0.5, 0.6, 0.7});
  EXPECT_DOUBLE_EQ(oracle.MarginalGain(c), 1.8);
  oracle.Add(c);
  EXPECT_DOUBLE_EQ(oracle.TotalScore(), 1.8);
  EXPECT_EQ(oracle.CoveredVertices(), 3u);
}

TEST(DiversityOracleTest, OverlapCountsMaxOnly) {
  DiversityOracle oracle;
  oracle.Add(Make({1, 2}, {0.9, 0.2}));
  const auto c = Make({2, 3}, {0.5, 0.4});
  // Vertex 2 improves 0.2 -> 0.5 (gain 0.3); vertex 3 is new (0.4).
  EXPECT_DOUBLE_EQ(oracle.MarginalGain(c), 0.7);
  oracle.Add(c);
  EXPECT_DOUBLE_EQ(oracle.TotalScore(), 0.9 + 0.5 + 0.4);
}

TEST(DiversityOracleTest, DominatedCommunityGainsNothing) {
  DiversityOracle oracle;
  oracle.Add(Make({1, 2}, {0.9, 0.8}));
  const auto weaker = Make({1, 2}, {0.5, 0.5});
  EXPECT_DOUBLE_EQ(oracle.MarginalGain(weaker), 0.0);
  oracle.Add(weaker);
  EXPECT_DOUBLE_EQ(oracle.TotalScore(), 1.7);
}

TEST(DiversityOracleTest, ResetClears) {
  DiversityOracle oracle;
  oracle.Add(Make({1}, {0.5}));
  oracle.Reset();
  EXPECT_DOUBLE_EQ(oracle.TotalScore(), 0.0);
  EXPECT_EQ(oracle.CoveredVertices(), 0u);
}

TEST(DiversityScoreTest, MatchesOracle) {
  const auto a = Make({1, 2}, {0.9, 0.2});
  const auto b = Make({2, 3}, {0.5, 0.4});
  const std::vector<const InfluencedCommunity*> sel = {&a, &b};
  DiversityOracle oracle;
  oracle.Add(a);
  oracle.Add(b);
  EXPECT_DOUBLE_EQ(DiversityScore(sel), oracle.TotalScore());
}

// Property: D is monotone (adding a community never lowers it) and
// submodular (gains shrink as the selection grows) — the two facts Lemma 9
// and the (1-1/e) bound rest on.
class DiversityPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiversityPropertyTest, MonotoneAndSubmodular) {
  const auto communities = RandomCommunities(GetParam(), 8, 20);
  // S' ⊆ S: build both incrementally, measuring the same candidate g.
  for (std::size_t split = 1; split + 1 < communities.size(); ++split) {
    DiversityOracle small;   // S' = first `split` communities
    DiversityOracle large;   // S  = first `split`+1 communities
    for (std::size_t i = 0; i < split; ++i) {
      small.Add(communities[i]);
      large.Add(communities[i]);
    }
    large.Add(communities[split]);
    EXPECT_GE(large.TotalScore(), small.TotalScore() - 1e-12);  // monotone
    const InfluencedCommunity& g = communities.back();
    EXPECT_GE(small.MarginalGain(g), large.MarginalGain(g) - 1e-12);  // submodular
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiversityPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(DiversityPropertyTest2, GainEqualsScoreDelta) {
  const auto communities = RandomCommunities(77, 6, 15);
  DiversityOracle oracle;
  for (const auto& c : communities) {
    const double before = oracle.TotalScore();
    const double predicted = oracle.MarginalGain(c);
    const double realized = oracle.Add(c);
    EXPECT_NEAR(predicted, realized, 1e-12);
    EXPECT_NEAR(oracle.TotalScore(), before + predicted, 1e-12);
  }
}

}  // namespace
}  // namespace topl

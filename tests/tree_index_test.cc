#include "index/tree_index.h"

#include <set>

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace topl {
namespace {

using testing::BuildIndexFor;
using testing::BuiltIndex;

Graph SmallWorld(std::size_t n, std::uint64_t seed) {
  SmallWorldOptions gen;
  gen.num_vertices = n;
  gen.seed = seed;
  Result<Graph> g = MakeSmallWorld(gen);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(TreeIndexTest, RejectsBadOptions) {
  const Graph g = SmallWorld(50, 1);
  Result<PrecomputedData> pre = PrecomputedData::Build(g, PrecomputeOptions());
  ASSERT_TRUE(pre.ok());
  TreeIndexOptions opts;
  opts.fanout = 1;
  EXPECT_FALSE(TreeIndex::Build(g, *pre, opts).ok());
  opts = TreeIndexOptions();
  opts.leaf_capacity = 0;
  EXPECT_FALSE(TreeIndex::Build(g, *pre, opts).ok());
}

TEST(TreeIndexTest, CoversEveryVertexExactlyOnce) {
  const Graph g = SmallWorld(137, 2);  // deliberately not a power of fanout
  const BuiltIndex built = BuildIndexFor(g);
  std::multiset<VertexId> seen;
  for (std::uint32_t id = 0; id < built.tree.NumNodes(); ++id) {
    const TreeIndex::Node& node = built.tree.node(id);
    if (!node.is_leaf) continue;
    for (VertexId v : built.tree.LeafVertices(node)) seen.insert(v);
  }
  EXPECT_EQ(seen.size(), g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) EXPECT_EQ(seen.count(v), 1u);
}

TEST(TreeIndexTest, NodeVertexCountsConsistent) {
  const Graph g = SmallWorld(200, 3);
  const BuiltIndex built = BuildIndexFor(g);
  for (std::uint32_t id = 0; id < built.tree.NumNodes(); ++id) {
    const TreeIndex::Node& node = built.tree.node(id);
    if (node.is_leaf) {
      EXPECT_EQ(node.num_vertices, node.end - node.begin);
    } else {
      std::uint32_t sum = 0;
      for (std::uint32_t c = 0; c < node.num_children; ++c) {
        sum += built.tree.node(node.first_child + c).num_vertices;
      }
      EXPECT_EQ(node.num_vertices, sum);
    }
  }
  EXPECT_EQ(built.tree.node(built.tree.root()).num_vertices, g.NumVertices());
}

TEST(TreeIndexTest, AggregatesDominateChildren) {
  const Graph g = SmallWorld(160, 4);
  const BuiltIndex built = BuildIndexFor(g);
  const PrecomputedData& pre = built.pre();
  for (std::uint32_t id = 0; id < built.tree.NumNodes(); ++id) {
    const TreeIndex::Node& node = built.tree.node(id);
    for (std::uint32_t r = 1; r <= pre.r_max(); ++r) {
      if (node.is_leaf) {
        for (VertexId v : built.tree.LeafVertices(node)) {
          EXPECT_GE(built.tree.SupportBound(id, r), pre.SupportBound(v, r));
          for (std::uint32_t z = 0; z < pre.num_thetas(); ++z) {
            EXPECT_GE(built.tree.ScoreBound(id, r, z), pre.ScoreBound(v, r, z));
          }
        }
      } else {
        for (std::uint32_t c = 0; c < node.num_children; ++c) {
          const std::uint32_t child = node.first_child + c;
          EXPECT_GE(built.tree.SupportBound(id, r),
                    built.tree.SupportBound(child, r));
          for (std::uint32_t z = 0; z < pre.num_thetas(); ++z) {
            EXPECT_GE(built.tree.ScoreBound(id, r, z),
                      built.tree.ScoreBound(child, r, z));
          }
        }
      }
    }
  }
}

TEST(TreeIndexTest, CenterTrussAggregatesDominate) {
  const Graph g = SmallWorld(180, 9);
  const BuiltIndex built = BuildIndexFor(g);
  const PrecomputedData& pre = built.pre();
  for (std::uint32_t id = 0; id < built.tree.NumNodes(); ++id) {
    const TreeIndex::Node& node = built.tree.node(id);
    if (node.is_leaf) {
      for (VertexId v : built.tree.LeafVertices(node)) {
        EXPECT_GE(built.tree.CenterTrussBound(id), pre.CenterTrussBound(v));
      }
    } else {
      for (std::uint32_t c = 0; c < node.num_children; ++c) {
        EXPECT_GE(built.tree.CenterTrussBound(id),
                  built.tree.CenterTrussBound(node.first_child + c));
      }
    }
  }
}

TEST(TreeIndexTest, SignatureAggregationNoFalseNegatives) {
  const Graph g = SmallWorld(100, 5);
  const BuiltIndex built = BuildIndexFor(g);
  const PrecomputedData& pre = built.pre();
  // For every leaf and every member vertex: any keyword present in the
  // member's hop signature must be visible in the leaf aggregate (and, by
  // induction on domination, all ancestors).
  for (std::uint32_t id = 0; id < built.tree.NumNodes(); ++id) {
    const TreeIndex::Node& node = built.tree.node(id);
    if (!node.is_leaf) continue;
    for (std::uint32_t r = 1; r <= pre.r_max(); ++r) {
      for (VertexId v : built.tree.LeafVertices(node)) {
        for (KeywordId w = 0; w < g.KeywordDomainBound(); ++w) {
          BitVector probe = BitVector::FromKeywords(std::vector<KeywordId>{w},
                                                    pre.signature_bits());
          if (pre.SignatureIntersects(v, r, probe)) {
            EXPECT_TRUE(built.tree.SignatureIntersects(id, r, probe));
          }
        }
      }
    }
  }
}

TEST(TreeIndexTest, FanoutRespected) {
  const Graph g = SmallWorld(300, 6);
  TreeIndexOptions opts;
  opts.fanout = 4;
  opts.leaf_capacity = 8;
  const BuiltIndex built = BuildIndexFor(g, PrecomputeOptions(), opts);
  for (std::uint32_t id = 0; id < built.tree.NumNodes(); ++id) {
    const TreeIndex::Node& node = built.tree.node(id);
    if (node.is_leaf) {
      EXPECT_LE(node.end - node.begin, 8u);
    } else {
      EXPECT_GE(node.num_children, 1u);
      EXPECT_LE(node.num_children, 4u);
    }
  }
}

TEST(TreeIndexTest, SingleLeafGraph) {
  const Graph g = SmallWorld(10, 7);
  TreeIndexOptions opts;
  opts.leaf_capacity = 64;  // everything fits in the root leaf
  const BuiltIndex built = BuildIndexFor(g, PrecomputeOptions(), opts);
  EXPECT_EQ(built.tree.NumNodes(), 1u);
  EXPECT_TRUE(built.tree.node(built.tree.root()).is_leaf);
  EXPECT_EQ(built.tree.height(), 1u);
}

TEST(TreeIndexTest, SortKeyOrdersLeaves) {
  const Graph g = SmallWorld(150, 8);
  const BuiltIndex built = BuildIndexFor(g);
  const auto sorted = built.tree.sorted_vertices();
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_GE(built.pre().SortKey(sorted[i - 1]),
              built.pre().SortKey(sorted[i]) - 1e-9);
  }
}

}  // namespace
}  // namespace topl

#include "core/topl_detector.h"

#include <cmath>

#include "core/brute_force.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace topl {
namespace {

using testing::BuildIndexFor;
using testing::BuiltIndex;
using testing::MakeFig1Like;
using testing::Scores;
using testing::VerifySeedCommunity;

Query DefaultQuery() {
  Query q;
  q.keywords = {0, 1, 2, 3, 4};
  q.k = 4;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 5;
  return q;
}

TEST(TopLDetectorTest, ValidatesQuery) {
  const Graph g = MakeFig1Like();
  const BuiltIndex built = BuildIndexFor(g);
  TopLDetector detector(g, built.pre(), built.tree);
  Query q = DefaultQuery();
  q.keywords.clear();
  EXPECT_FALSE(detector.Search(q).ok());
  q = DefaultQuery();
  q.radius = 99;  // beyond r_max
  EXPECT_FALSE(detector.Search(q).ok());
  q = DefaultQuery();
  q.theta = 1.0;
  EXPECT_FALSE(detector.Search(q).ok());
  q = DefaultQuery();
  q.keywords = {3, 1};  // unsorted
  EXPECT_FALSE(detector.Search(q).ok());
}

TEST(TopLDetectorTest, Fig1Top1IsTheCore) {
  const Graph g = MakeFig1Like();
  const BuiltIndex built = BuildIndexFor(g);
  TopLDetector detector(g, built.pre(), built.tree);
  Query q;
  q.keywords = {0};  // "movies"
  q.k = 4;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 1;
  Result<TopLResult> result = detector.Search(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->communities.size(), 1u);
  EXPECT_EQ(result->communities[0].community.vertices,
            (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_TRUE(VerifySeedCommunity(g, q, result->communities[0].community));
  // The influenced community reaches down the strong chain 3→7→8→9.
  EXPECT_GT(result->communities[0].influence.size(), 4u);
}

TEST(TopLDetectorTest, ResultsSortedByScore) {
  SmallWorldOptions gen;
  gen.num_vertices = 200;
  gen.seed = 41;
  gen.keywords.domain_size = 10;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  const BuiltIndex built = BuildIndexFor(*g);
  TopLDetector detector(*g, built.pre(), built.tree);
  Query q = DefaultQuery();
  q.k = 3;
  Result<TopLResult> result = detector.Search(q);
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 1; i < result->communities.size(); ++i) {
    EXPECT_GE(result->communities[i - 1].score(), result->communities[i].score());
  }
}

TEST(TopLDetectorTest, NoMatchesYieldsEmpty) {
  const Graph g = MakeFig1Like();
  const BuiltIndex built = BuildIndexFor(g);
  TopLDetector detector(g, built.pre(), built.tree);
  Query q = DefaultQuery();
  q.keywords = {42};  // nobody has this keyword
  Result<TopLResult> result = detector.Search(q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->communities.empty());
  // Everything must have been pruned by keyword at some level.
  EXPECT_EQ(result->stats.pruned_keyword +
                result->stats.candidates_refined,
            g.NumVertices());
}

TEST(TopLDetectorTest, StatsAccountForEveryVertex) {
  SmallWorldOptions gen;
  gen.num_vertices = 150;
  gen.seed = 42;
  gen.keywords.domain_size = 10;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  const BuiltIndex built = BuildIndexFor(*g);
  TopLDetector detector(*g, built.pre(), built.tree);
  Query q = DefaultQuery();
  q.k = 3;
  Result<TopLResult> result = detector.Search(q);
  ASSERT_TRUE(result.ok());
  const QueryStats& s = result->stats;
  // Every center vertex is either pruned (at some level) or refined.
  EXPECT_EQ(s.TotalPruned() + s.candidates_refined, g->NumVertices());
}

// The headline correctness property: the index path returns exactly the
// brute-force answer (as a score multiset) across a parameter sweep.
struct SweepCase {
  std::uint64_t seed;
  std::uint32_t k;
  std::uint32_t radius;
  double theta;
  std::uint32_t top_l;
};

class IndexEquivalenceTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(IndexEquivalenceTest, MatchesBruteForce) {
  const SweepCase& param = GetParam();
  SmallWorldOptions gen;
  gen.num_vertices = 180;
  gen.seed = param.seed;
  gen.keywords.domain_size = 10;
  gen.keywords.keywords_per_vertex = 3;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  const BuiltIndex built = BuildIndexFor(*g);
  TopLDetector detector(*g, built.pre(), built.tree);

  Query q;
  q.keywords = {0, 1, 2, 4, 7};
  q.k = param.k;
  q.radius = param.radius;
  q.theta = param.theta;
  q.top_l = param.top_l;

  Result<TopLResult> indexed = detector.Search(q);
  ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
  Result<TopLResult> brute = BruteForceTopL(*g, q);
  ASSERT_TRUE(brute.ok());

  const auto a = Scores(indexed->communities);
  const auto b = Scores(brute->communities);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-9) << "rank " << i;
  }
  // And the returned communities must themselves be valid.
  for (const CommunityResult& c : indexed->communities) {
    EXPECT_TRUE(VerifySeedCommunity(*g, q, c.community));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IndexEquivalenceTest,
    ::testing::Values(SweepCase{1, 3, 2, 0.2, 5}, SweepCase{2, 4, 2, 0.2, 5},
                      SweepCase{3, 3, 1, 0.1, 3}, SweepCase{4, 3, 3, 0.3, 8},
                      SweepCase{5, 4, 3, 0.1, 2}, SweepCase{6, 5, 2, 0.2, 5},
                      SweepCase{7, 3, 2, 0.05, 5},   // θ below θ_1: no score bound
                      SweepCase{8, 3, 2, 0.25, 10},  // θ between presets
                      SweepCase{9, 2, 2, 0.2, 5},    // k=2: no truss constraint
                      SweepCase{10, 3, 2, 0.2, 1000}));  // L larger than answers

TEST(TopLDetectorTest, ThetaBelowPresetDisablesScorePruning) {
  SmallWorldOptions gen;
  gen.num_vertices = 120;
  gen.seed = 43;
  gen.keywords.domain_size = 10;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  const BuiltIndex built = BuildIndexFor(*g);
  TopLDetector detector(*g, built.pre(), built.tree);
  Query q = DefaultQuery();
  q.k = 3;
  q.theta = 0.01;  // below θ_1 = 0.1
  Result<TopLResult> result = detector.Search(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.pruned_score, 0u);
  EXPECT_EQ(result->stats.pruned_termination, 0u);
}

TEST(TopLDetectorTest, DetectorReusableAcrossQueries) {
  SmallWorldOptions gen;
  gen.num_vertices = 120;
  gen.seed = 44;
  gen.keywords.domain_size = 10;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  const BuiltIndex built = BuildIndexFor(*g);
  TopLDetector detector(*g, built.pre(), built.tree);
  Query q = DefaultQuery();
  q.k = 3;
  Result<TopLResult> first = detector.Search(q);
  Result<TopLResult> second = detector.Search(q);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(Scores(first->communities), Scores(second->communities));
}

}  // namespace
}  // namespace topl

#include "common/status.h"

#include "common/result.h"
#include "gtest/gtest.h"

namespace topl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCategories) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CategoriesAreExclusive) {
  const Status s = Status::IOError("disk");
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.IsInvalidArgument());
  EXPECT_FALSE(s.IsCorruption());
  EXPECT_TRUE(s.IsIOError());
}

TEST(StatusTest, ToStringIncludesCategoryAndMessage) {
  EXPECT_EQ(Status::Corruption("bad magic").ToString(), "Corruption: bad magic");
  EXPECT_EQ(Status::InvalidArgument("k").ToString(), "InvalidArgument: k");
}

TEST(StatusTest, CopySemantics) {
  Status a = Status::NotFound("missing");
  Status b = a;
  EXPECT_TRUE(b.IsNotFound());
  EXPECT_EQ(b.message(), "missing");
  a = Status::OK();
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.IsNotFound());  // b unaffected
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(r.ok());
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> r(std::vector<int>{1});
  r->push_back(2);
  EXPECT_EQ(r->size(), 2u);
}

TEST(ReturnIfErrorTest, PropagatesFailure) {
  auto inner = []() { return Status::Corruption("inner"); };
  auto outer = [&]() -> Status {
    TOPL_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsCorruption());
}

TEST(ReturnIfErrorTest, PassesThroughOk) {
  auto inner = []() { return Status::OK(); };
  auto outer = [&]() -> Status {
    TOPL_RETURN_IF_ERROR(inner());
    return Status::InvalidArgument("reached");
  };
  EXPECT_TRUE(outer().IsInvalidArgument());
}

}  // namespace
}  // namespace topl

// The durability substrate: the write-ahead update journal must round-trip
// deltas bit-exactly, heal torn tails at the exact record boundary, and
// reject corrupted committed records with a typed error; AtomicFile must
// leave the destination untouched on any failure path. The injected-fault
// cases drive the same code paths a real crash or failing disk would.

#include "storage/update_journal.h"

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "graph/graph_delta.h"
#include "gtest/gtest.h"
#include "storage/artifact.h"
#include "storage/atomic_file.h"
#include "tests/test_util.h"

namespace topl {
namespace {

class UpdateJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("topl_journal_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    fault::Disarm();
  }
  void TearDown() override {
    fault::Disarm();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  static std::vector<GraphDelta> TestDeltas(std::size_t count) {
    SmallWorldOptions gen;
    gen.num_vertices = 80;
    gen.seed = 7;
    gen.keywords.domain_size = 10;
    Result<Graph> g = MakeSmallWorld(gen);
    EXPECT_TRUE(g.ok()) << g.status().ToString();
    Rng rng(99);
    std::vector<GraphDelta> deltas;
    while (deltas.size() < count) {
      GraphDelta d = MakeRandomDelta(*g, rng);
      if (!d.empty()) deltas.push_back(std::move(d));
    }
    return deltas;
  }

  static void ExpectSameDelta(const GraphDelta& actual,
                              const GraphDelta& expected) {
    // Bit-exact comparison through the canonical encoding.
    EXPECT_EQ(UpdateJournal::EncodeDelta(actual),
              UpdateJournal::EncodeDelta(expected));
  }

  static std::uint64_t FileSize(const std::string& path) {
    return static_cast<std::uint64_t>(std::filesystem::file_size(path));
  }

  std::filesystem::path dir_;
};

TEST_F(UpdateJournalTest, EncodeDecodeRoundtrip) {
  for (const GraphDelta& delta : TestDeltas(8)) {
    const std::vector<std::uint8_t> bytes = UpdateJournal::EncodeDelta(delta);
    Result<GraphDelta> decoded =
        UpdateJournal::DecodeDelta(bytes.data(), bytes.size());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ExpectSameDelta(*decoded, delta);
  }
}

TEST_F(UpdateJournalTest, AppendReopenReplay) {
  const std::string path = Path("wal.jrn");
  const std::vector<GraphDelta> deltas = TestDeltas(5);

  UpdateJournal::OpenInfo info;
  Result<std::unique_ptr<UpdateJournal>> journal =
      UpdateJournal::Open(path, &info);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_TRUE(info.created);
  EXPECT_EQ(info.records, 0u);

  for (const GraphDelta& delta : deltas) {
    ASSERT_TRUE((*journal)->Append(delta).ok());
  }
  EXPECT_EQ((*journal)->num_records(), deltas.size());
  journal->reset();  // close the append fd

  // Reopen: all records are retained, nothing is torn.
  journal = UpdateJournal::Open(path, &info);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_FALSE(info.created);
  EXPECT_EQ(info.records, deltas.size());
  EXPECT_EQ(info.torn_bytes_discarded, 0u);

  Result<std::vector<GraphDelta>> replayed = UpdateJournal::Replay(path);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  ASSERT_EQ(replayed->size(), deltas.size());
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    ExpectSameDelta((*replayed)[i], deltas[i]);
  }
}

TEST_F(UpdateJournalTest, MissingFileReplaysEmpty) {
  Result<std::vector<GraphDelta>> replayed =
      UpdateJournal::Replay(Path("never_written.jrn"));
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_TRUE(replayed->empty());
}

TEST_F(UpdateJournalTest, TornTailHealedAtRecordBoundary) {
  const std::string path = Path("torn.jrn");
  const std::vector<GraphDelta> deltas = TestDeltas(3);
  {
    Result<std::unique_ptr<UpdateJournal>> journal = UpdateJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    for (const GraphDelta& delta : deltas) {
      ASSERT_TRUE((*journal)->Append(delta).ok());
    }
  }
  // Simulate a crash mid-append of record 3: chop a few bytes off the end.
  const std::uint64_t full = FileSize(path);
  ASSERT_TRUE(std::filesystem::exists(path));
  std::filesystem::resize_file(path, full - 5);

  // Replay (read-only) stops at the last complete record.
  std::uint64_t torn = 0;
  Result<std::vector<GraphDelta>> replayed = UpdateJournal::Replay(path, &torn);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(replayed->size(), 2u);
  EXPECT_GT(torn, 0u);

  // Open heals: the torn tail is truncated away and appends continue.
  UpdateJournal::OpenInfo info;
  Result<std::unique_ptr<UpdateJournal>> journal =
      UpdateJournal::Open(path, &info);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_EQ(info.records, 2u);
  EXPECT_GT(info.torn_bytes_discarded, 0u);
  ASSERT_TRUE((*journal)->Append(deltas[2]).ok());
  journal->reset();

  replayed = UpdateJournal::Replay(path, &torn);
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed->size(), 3u);
  EXPECT_EQ(torn, 0u);
  ExpectSameDelta((*replayed)[2], deltas[2]);
}

TEST_F(UpdateJournalTest, CorruptedRecordDropsSuffixNotPrefix) {
  const std::string path = Path("flip.jrn");
  const std::vector<GraphDelta> deltas = TestDeltas(4);
  std::vector<std::uint64_t> sizes;  // file size after each append
  {
    Result<std::unique_ptr<UpdateJournal>> journal = UpdateJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    for (const GraphDelta& delta : deltas) {
      ASSERT_TRUE((*journal)->Append(delta).ok());
      sizes.push_back(FileSize(path));
    }
  }
  // Flip one payload byte inside record 3. The checksum no longer matches,
  // so the chain is cut there: records 1-2 survive, 3-4 are discarded (a
  // checksum mismatch is indistinguishable from a torn concurrent write).
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(sizes[1]) + 20);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(sizes[1]) + 20);
    f.write(&byte, 1);
  }
  std::uint64_t torn = 0;
  Result<std::vector<GraphDelta>> replayed = UpdateJournal::Replay(path, &torn);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  ASSERT_EQ(replayed->size(), 2u);
  EXPECT_EQ(torn, FileSize(path) - sizes[1]);
  ExpectSameDelta((*replayed)[0], deltas[0]);
  ExpectSameDelta((*replayed)[1], deltas[1]);
}

TEST_F(UpdateJournalTest, TruncateDropsAllRecords) {
  const std::string path = Path("trunc.jrn");
  Result<std::unique_ptr<UpdateJournal>> journal = UpdateJournal::Open(path);
  ASSERT_TRUE(journal.ok());
  for (const GraphDelta& delta : TestDeltas(3)) {
    ASSERT_TRUE((*journal)->Append(delta).ok());
  }
  ASSERT_TRUE((*journal)->Truncate().ok());
  EXPECT_EQ((*journal)->num_records(), 0u);

  Result<std::vector<GraphDelta>> replayed = UpdateJournal::Replay(path);
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(replayed->empty());

  // The journal stays usable after a truncate.
  ASSERT_TRUE((*journal)->Append(TestDeltas(1)[0]).ok());
  journal->reset();
  replayed = UpdateJournal::Replay(path);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->size(), 1u);
}

TEST_F(UpdateJournalTest, GarbageHeaderRejected) {
  const std::string path = Path("garbage.jrn");
  std::ofstream(path, std::ios::binary) << "this is not a journal at all";
  Result<std::unique_ptr<UpdateJournal>> journal = UpdateJournal::Open(path);
  EXPECT_FALSE(journal.ok());
  Result<std::vector<GraphDelta>> replayed = UpdateJournal::Replay(path);
  EXPECT_FALSE(replayed.ok());
}

// ---------------------------------------------------------------------------
// Injected faults (compiled in via TOPL_FAULT_INJECTION; skip otherwise)
// ---------------------------------------------------------------------------

TEST_F(UpdateJournalTest, InjectedAppendErrorLeavesJournalConsistent) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  const std::string path = Path("fault_append.jrn");
  const std::vector<GraphDelta> deltas = TestDeltas(2);
  Result<std::unique_ptr<UpdateJournal>> journal = UpdateJournal::Open(path);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*journal)->Append(deltas[0]).ok());

  fault::Arm("journal.append", fault::Action::kIOError);
  const Status failed = (*journal)->Append(deltas[1]);
  EXPECT_TRUE(failed.IsIOError()) << failed.ToString();
  fault::Disarm();
  journal->reset();

  // The failed append wrote nothing: exactly record 1 replays.
  std::uint64_t torn = 0;
  Result<std::vector<GraphDelta>> replayed = UpdateJournal::Replay(path, &torn);
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed->size(), 1u);
  EXPECT_EQ(torn, 0u);
  ExpectSameDelta((*replayed)[0], deltas[0]);
}

TEST_F(UpdateJournalTest, InjectedShortWriteIsHealedOnReopen) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  const std::string path = Path("fault_short.jrn");
  const std::vector<GraphDelta> deltas = TestDeltas(2);
  {
    Result<std::unique_ptr<UpdateJournal>> journal = UpdateJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append(deltas[0]).ok());
    // The short write persists a record prefix (header + partial payload),
    // exactly what a crash mid-append leaves behind.
    fault::Arm("journal.append", fault::Action::kShortWrite);
    EXPECT_FALSE((*journal)->Append(deltas[1]).ok());
    fault::Disarm();
  }
  UpdateJournal::OpenInfo info;
  Result<std::unique_ptr<UpdateJournal>> journal =
      UpdateJournal::Open(path, &info);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_EQ(info.records, 1u);
  EXPECT_GT(info.torn_bytes_discarded, 0u);
  // The healed journal accepts the delta that previously tore.
  ASSERT_TRUE((*journal)->Append(deltas[1]).ok());
  journal->reset();
  Result<std::vector<GraphDelta>> replayed = UpdateJournal::Replay(path);
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed->size(), 2u);
  ExpectSameDelta((*replayed)[1], deltas[1]);
}

TEST_F(UpdateJournalTest, AtomicFileCommitReplacesAtomically) {
  const std::string path = Path("target.bin");
  std::ofstream(path, std::ios::binary) << "old content";
  Result<AtomicFile> file = AtomicFile::Create(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  const std::string payload = "new content, longer than before";
  ASSERT_TRUE(file->Append(payload.data(), payload.size()).ok());
  ASSERT_TRUE(file->Commit().ok());

  std::ifstream in(path, std::ios::binary);
  std::string got((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(got, payload);
  // No temp litter.
  EXPECT_EQ(std::distance(std::filesystem::directory_iterator(dir_),
                          std::filesystem::directory_iterator()),
            1);
}

TEST_F(UpdateJournalTest, AtomicFileAbandonedWriterLeavesOldFile) {
  const std::string path = Path("keep.bin");
  std::ofstream(path, std::ios::binary) << "precious";
  {
    Result<AtomicFile> file = AtomicFile::Create(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file->Append("doomed", 6).ok());
    // Destroyed without Commit: temp removed, destination untouched.
  }
  std::ifstream in(path, std::ios::binary);
  std::string got((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(got, "precious");
  EXPECT_EQ(std::distance(std::filesystem::directory_iterator(dir_),
                          std::filesystem::directory_iterator()),
            1);
}

TEST_F(UpdateJournalTest, InjectedCommitFaultsLeaveDestinationUntouched) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  const std::string path = Path("fault_commit.bin");
  std::ofstream(path, std::ios::binary) << "survivor";
  for (const char* point : {"atomic.fsync", "atomic.rename"}) {
    fault::Arm(point, fault::Action::kIOError);
    Result<AtomicFile> file = AtomicFile::Create(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file->Append("clobber", 7).ok());
    EXPECT_FALSE(file->Commit().ok()) << point;
    fault::Disarm();
    std::ifstream in(path, std::ios::binary);
    std::string got((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    EXPECT_EQ(got, "survivor") << point;
  }
  // And the failed commits removed their temp files.
  EXPECT_EQ(std::distance(std::filesystem::directory_iterator(dir_),
                          std::filesystem::directory_iterator()),
            1);
}

TEST_F(UpdateJournalTest, InjectedArtifactWriteFaultKeepsOldArtifact) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  SmallWorldOptions gen;
  gen.num_vertices = 60;
  gen.seed = 3;
  gen.keywords.domain_size = 8;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  testing::BuiltIndex built = testing::BuildIndexFor(*g);

  const std::string path = Path("index.idx");
  ASSERT_TRUE(ArtifactWriter::Write(*g, built.pre(), built.tree, path).ok());
  const std::uint64_t original_size = FileSize(path);

  for (const char* point : {"artifact.write", "atomic.write", "atomic.fsync",
                            "atomic.rename"}) {
    fault::Arm(point, fault::Action::kIOError);
    EXPECT_FALSE(
        ArtifactWriter::Write(*g, built.pre(), built.tree, path).ok())
        << point;
    fault::Disarm();
    EXPECT_EQ(FileSize(path), original_size) << point;
    Result<MappedIndex> reopened = ArtifactReader::Open(path);
    EXPECT_TRUE(reopened.ok()) << point << ": " << reopened.status().ToString();
  }
}

}  // namespace
}  // namespace topl

#include "core/seed_community.h"

#include <algorithm>
#include <set>

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace topl {
namespace {

using testing::MakeClique;
using testing::MakeFig1Like;
using testing::MakeKeywordGraph;
using testing::VerifySeedCommunity;

Query BasicQuery(std::vector<KeywordId> keywords, std::uint32_t k,
                 std::uint32_t radius) {
  Query q;
  q.keywords = std::move(keywords);
  q.k = k;
  q.radius = radius;
  q.theta = 0.2;
  q.top_l = 5;
  return q;
}

TEST(SeedCommunityTest, CliqueExtractsFully) {
  const Graph g = MakeClique(5);
  SeedCommunityExtractor extractor(g);
  SeedCommunity c;
  ASSERT_TRUE(extractor.Extract(0, BasicQuery({0}, 5, 1), &c));
  EXPECT_EQ(c.vertices.size(), 5u);
  EXPECT_EQ(c.edges.size(), 10u);
  EXPECT_TRUE(VerifySeedCommunity(g, BasicQuery({0}, 5, 1), c));
}

TEST(SeedCommunityTest, KTooLargeGivesNothing) {
  const Graph g = MakeClique(5);
  SeedCommunityExtractor extractor(g);
  SeedCommunity c;
  EXPECT_FALSE(extractor.Extract(0, BasicQuery({0}, 6, 1), &c));
}

TEST(SeedCommunityTest, CenterWithoutQueryKeywordFails) {
  const Graph g = MakeKeywordGraph(3, {{0, 1}, {1, 2}, {0, 2}},
                                   {{1}, {2}, {2}});
  SeedCommunityExtractor extractor(g);
  SeedCommunity c;
  // Center 0 lacks query keyword 2 — no community regardless of structure.
  EXPECT_FALSE(extractor.Extract(0, BasicQuery({2}, 2, 1), &c));
  // Center 1 has it; with k=2 the keyword-filtered edge {1, 2} qualifies.
  ASSERT_TRUE(extractor.Extract(1, BasicQuery({2}, 2, 1), &c));
  EXPECT_EQ(c.vertices, (std::vector<VertexId>{1, 2}));
  // At k=3 the two keyword holders cannot form a triangle: no community.
  EXPECT_FALSE(extractor.Extract(1, BasicQuery({2}, 3, 1), &c));
}

TEST(SeedCommunityTest, KeywordFilterShrinksCommunity) {
  // K4 where vertex 3 lacks the query keyword: a 3-truss {0,1,2} survives.
  const Graph g = MakeKeywordGraph(
      4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}},
      {{5}, {5}, {5}, {9}});
  SeedCommunityExtractor extractor(g);
  SeedCommunity c;
  const Query q = BasicQuery({5}, 3, 1);
  ASSERT_TRUE(extractor.Extract(0, q, &c));
  EXPECT_EQ(c.vertices, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_TRUE(VerifySeedCommunity(g, q, c));
}

TEST(SeedCommunityTest, Fig1CoreFound) {
  const Graph g = MakeFig1Like();
  SeedCommunityExtractor extractor(g);
  SeedCommunity c;
  // k=4 around center 0 with keyword "movies" (0): exactly the K4 core.
  const Query q = BasicQuery({0}, 4, 2);
  ASSERT_TRUE(extractor.Extract(0, q, &c));
  EXPECT_EQ(c.vertices, (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_TRUE(VerifySeedCommunity(g, q, c));
}

TEST(SeedCommunityTest, Fig1WeakTriangleExcludedAtK4) {
  const Graph g = MakeFig1Like();
  SeedCommunityExtractor extractor(g);
  SeedCommunity c;
  // Center 4 sits in a plain triangle: it survives k=3 (keyword 2)...
  ASSERT_TRUE(extractor.Extract(4, BasicQuery({2}, 3, 1), &c));
  EXPECT_EQ(c.vertices, (std::vector<VertexId>{4, 5, 6}));
  // ...but not k=4.
  EXPECT_FALSE(extractor.Extract(4, BasicQuery({2}, 4, 1), &c));
}

TEST(SeedCommunityTest, RadiusConstraintMeasuredInsideCommunity) {
  // Two K4s sharing vertex 3: {0,1,2,3} and {3,4,5,6}; center 0 with r=1
  // keeps only its own K4 even though the other is within 2 hops.
  const Graph g = MakeKeywordGraph(
      7,
      {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
       {3, 4}, {3, 5}, {3, 6}, {4, 5}, {4, 6}, {5, 6}},
      {{1}, {1}, {1}, {1}, {1}, {1}, {1}});
  SeedCommunityExtractor extractor(g);
  SeedCommunity c;
  const Query q1 = BasicQuery({1}, 4, 1);
  ASSERT_TRUE(extractor.Extract(0, q1, &c));
  EXPECT_EQ(c.vertices, (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_TRUE(VerifySeedCommunity(g, q1, c));
  // With r=2 both K4s join (distance from 0 to 4/5/6 is 2 via vertex 3).
  const Query q2 = BasicQuery({1}, 4, 2);
  ASSERT_TRUE(extractor.Extract(0, q2, &c));
  EXPECT_EQ(c.vertices.size(), 7u);
  EXPECT_TRUE(VerifySeedCommunity(g, q2, c));
}

TEST(SeedCommunityTest, CliqueChainTruncatedByBfsRadius) {
  // Chain of K4s A{0,1,2,3} - B{3,4,5,6} - C{6,7,8,9}: with r=2 from center
  // 0, C's private vertices sit at distance 3 and never enter the candidate
  // subgraph, while 6 (distance 2) stays — B alone keeps it a 4-truss
  // member.
  const Graph g = MakeKeywordGraph(
      10,
      {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},          // A
       {3, 4}, {3, 5}, {3, 6}, {4, 5}, {4, 6}, {5, 6},          // B
       {6, 7}, {6, 8}, {6, 9}, {7, 8}, {7, 9}, {8, 9}},         // C
      {{1}, {1}, {1}, {1}, {1}, {1}, {1}, {1}, {1}, {1}});
  SeedCommunityExtractor extractor(g);
  SeedCommunity c;
  const Query q = BasicQuery({1}, 4, 2);
  ASSERT_TRUE(extractor.Extract(0, q, &c));
  EXPECT_EQ(c.vertices, (std::vector<VertexId>{0, 1, 2, 3, 4, 5, 6}));
  EXPECT_TRUE(VerifySeedCommunity(g, q, c));
}

TEST(SeedCommunityTest, RadiusEvictionCascadesIntoRepeel) {
  // The genuine fixpoint case: peeling removes a shortcut edge, which pushes
  // vertices beyond r; their eviction must trigger a re-peel that unravels
  // the structure they supported.
  //
  // A = K4{0,1,2,3} (center 0), B = K4{3,4,5,6}, triangle T = {6,8,9},
  // shortcut hub 10 with thin edges to 0, 8, 9. Pre-peel, 8 and 9 are at
  // distance 2 through the hub. The hub's edge to 0 has no triangle and dies
  // at k=3, stretching 8/9 to distance 3 > r; evicting them must cascade and
  // also dissolve the {6,8,9} triangle and the hub.
  const Graph g = MakeKeywordGraph(
      11,
      {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},   // A
       {3, 4}, {3, 5}, {3, 6}, {4, 5}, {4, 6}, {5, 6},   // B
       {6, 8}, {6, 9}, {8, 9},                           // T
       {10, 0}, {10, 8}, {10, 9}},                       // hub
      {{1}, {1}, {1}, {1}, {1}, {1}, {1}, {1}, {1}, {1}, {1}});
  SeedCommunityExtractor extractor(g);
  SeedCommunity c;
  const Query q = BasicQuery({1}, 3, 2);
  ASSERT_TRUE(extractor.Extract(0, q, &c));
  EXPECT_EQ(c.vertices, (std::vector<VertexId>{0, 1, 2, 3, 4, 5, 6}));
  EXPECT_TRUE(VerifySeedCommunity(g, q, c));
}

TEST(SeedCommunityTest, DisconnectedTrussComponentDropped) {
  // Two K4s joined by a single edge (not enough to merge them into one
  // truss component at k=4... the bridge edge dies, disconnecting them).
  const Graph g = MakeKeywordGraph(
      8,
      {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
       {4, 5}, {4, 6}, {4, 7}, {5, 6}, {5, 7}, {6, 7},
       {3, 4}},
      {{1}, {1}, {1}, {1}, {1}, {1}, {1}, {1}});
  SeedCommunityExtractor extractor(g);
  SeedCommunity c;
  const Query q = BasicQuery({1}, 4, 3);
  ASSERT_TRUE(extractor.Extract(0, q, &c));
  EXPECT_EQ(c.vertices, (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_TRUE(VerifySeedCommunity(g, q, c));
}

TEST(SeedCommunityTest, IsolatedCenterAfterPeelFails) {
  // Path graph: no triangles anywhere, so k=3 leaves the center edgeless.
  const Graph g = MakeKeywordGraph(3, {{0, 1}, {1, 2}}, {{1}, {1}, {1}});
  SeedCommunityExtractor extractor(g);
  SeedCommunity c;
  EXPECT_FALSE(extractor.Extract(1, BasicQuery({1}, 3, 2), &c));
}

TEST(SeedCommunityTest, KTwoKeepsEdgesWithinRadius) {
  // k=2 imposes no triangle constraint: community = keyword-filtered
  // connected subgraph within r.
  const Graph g = MakeKeywordGraph(4, {{0, 1}, {1, 2}, {2, 3}},
                                   {{1}, {1}, {1}, {1}});
  SeedCommunityExtractor extractor(g);
  SeedCommunity c;
  const Query q = BasicQuery({1}, 2, 2);
  ASSERT_TRUE(extractor.Extract(1, q, &c));
  EXPECT_EQ(c.vertices, (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_TRUE(VerifySeedCommunity(g, q, c));
}

// Property sweep: every extracted community on random graphs satisfies all
// Definition 2 constraints (independent checker), and extraction is
// deterministic.
class ExtractorPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t,
                                                 std::uint32_t>> {};

TEST_P(ExtractorPropertyTest, AllConstraintsHold) {
  const auto [seed, k, radius] = GetParam();
  SmallWorldOptions gen;
  gen.num_vertices = 150;
  gen.seed = seed;
  gen.keywords.domain_size = 8;  // dense keywords so communities exist
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  SeedCommunityExtractor extractor(*g);
  Query q = BasicQuery({0, 1, 2}, k, radius);
  std::size_t found = 0;
  for (VertexId v = 0; v < g->NumVertices(); ++v) {
    SeedCommunity c;
    if (!extractor.Extract(v, q, &c)) continue;
    ++found;
    EXPECT_EQ(c.center, v);
    EXPECT_TRUE(VerifySeedCommunity(*g, q, c)) << "center " << v;
    // Determinism.
    SeedCommunity again;
    ASSERT_TRUE(extractor.Extract(v, q, &again));
    EXPECT_EQ(c.vertices, again.vertices);
  }
  if (k <= 3 && radius >= 2) {
    EXPECT_GT(found, 0u) << "sweep found no communities at all — weak test";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExtractorPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(3u, 4u),
                       ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace topl

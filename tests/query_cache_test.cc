// The result-cache contract: serving through the snapshot-epoch cache is
// invisible except in wall-clock. Cached answers must stay byte-identical to
// a cache-free engine across arbitrary query/update interleavings (a
// 20-graph sweep re-issues every previously-cached query after every
// ApplyUpdate), an update must only invalidate entries its dirty region can
// actually change (epoch bumps alone keep clean entries resident), keys must
// canonicalize keyword order/duplication, eviction must bound residency, and
// the single-flight path must coalesce concurrent identical queries — raced
// here against updates and eviction for TSan.

#include "cache/query_cache.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "topl.h"

namespace topl {
namespace {

using testing::MakeClique;

Query MakeQuery(std::vector<KeywordId> keywords, std::uint32_t k,
                std::uint32_t radius, double theta, std::uint32_t top_l) {
  Query q;
  q.keywords = std::move(keywords);
  q.k = k;
  q.radius = radius;
  q.theta = theta;
  q.top_l = top_l;
  return q;
}

std::vector<KeywordId> SampleQueryKeywords(const Graph& g, Rng& rng,
                                           std::uint32_t count) {
  std::vector<KeywordId> out;
  for (int attempt = 0; out.size() < count && attempt < 1000; ++attempt) {
    const VertexId v = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    const auto kws = g.Keywords(v);
    if (kws.empty()) continue;
    const KeywordId w = kws[rng.NextBounded(kws.size())];
    if (std::find(out.begin(), out.end(), w) == out.end()) out.push_back(w);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectSameCommunities(const std::vector<CommunityResult>& got,
                           const std::vector<CommunityResult>& want,
                           const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].community.center, want[i].community.center) << context;
    EXPECT_EQ(got[i].community.vertices, want[i].community.vertices) << context;
    EXPECT_EQ(got[i].community.edges, want[i].community.edges) << context;
    EXPECT_EQ(got[i].influence.vertices, want[i].influence.vertices) << context;
    EXPECT_EQ(got[i].influence.cpp, want[i].influence.cpp) << context;
    EXPECT_EQ(got[i].score(), want[i].score()) << context;
  }
}

// Issues `query` on both engines and requires field-identical answers.
void ExpectSameAnswer(Engine* cached, Engine* uncached, const Query& query,
                      bool diversified, const std::string& context) {
  if (diversified) {
    Result<DTopLResult> got = cached->SearchDiversified(query, DTopLOptions());
    Result<DTopLResult> want =
        uncached->SearchDiversified(query, DTopLOptions());
    ASSERT_EQ(got.ok(), want.ok()) << context;
    if (!got.ok()) return;
    ExpectSameCommunities(got->communities, want->communities, context);
    EXPECT_EQ(got->diversity_score, want->diversity_score) << context;
    EXPECT_EQ(got->truncated, want->truncated) << context;
    EXPECT_EQ(got->score_upper_bound, want->score_upper_bound) << context;
    return;
  }
  Result<TopLResult> got = cached->Search(query);
  Result<TopLResult> want = uncached->Search(query);
  ASSERT_EQ(got.ok(), want.ok()) << context;
  if (!got.ok()) return;
  ExpectSameCommunities(got->communities, want->communities, context);
  EXPECT_EQ(got->truncated, want->truncated) << context;
  EXPECT_EQ(got->score_upper_bound, want->score_upper_bound) << context;
}

// ---------------------------------------------------------------------------
// CacheKey canonicalization
// ---------------------------------------------------------------------------

TEST(CacheKeyTest, PermutedAndDuplicatedKeywordsShareOneKey) {
  const Query canonical = MakeQuery({1, 5, 9}, 4, 2, 0.2, 5);
  Query permuted = canonical;
  permuted.keywords = {9, 1, 5};
  Query duplicated = canonical;
  duplicated.keywords = {5, 9, 1, 5, 9, 9};

  const CacheKey base = CacheKey::ForTopL(canonical, QueryOptions());
  for (const Query& variant : {permuted, duplicated}) {
    const CacheKey key = CacheKey::ForTopL(variant, QueryOptions());
    EXPECT_EQ(key, base);
    EXPECT_EQ(key.Hash(), base.Hash());
    EXPECT_EQ(key.keywords, (std::vector<KeywordId>{1, 5, 9}));
  }

  const CacheKey d_base = CacheKey::ForDTopL(canonical, DTopLOptions());
  const CacheKey d_permuted = CacheKey::ForDTopL(permuted, DTopLOptions());
  EXPECT_EQ(d_permuted, d_base);
  EXPECT_EQ(d_permuted.Hash(), d_base.Hash());
  // TopL and DTopL keys of the same query never collide.
  EXPECT_NE(d_base, base);
}

TEST(CacheKeyTest, EveryQueryDimensionSeparatesKeys) {
  const Query base = MakeQuery({1, 5, 9}, 4, 2, 0.2, 5);

  std::vector<CacheKey> keys;
  keys.push_back(CacheKey::ForTopL(base, QueryOptions()));
  Query q = base;
  q.k = 5;
  keys.push_back(CacheKey::ForTopL(q, QueryOptions()));
  q = base;
  q.radius = 1;
  keys.push_back(CacheKey::ForTopL(q, QueryOptions()));
  q = base;
  q.theta = 0.3;
  keys.push_back(CacheKey::ForTopL(q, QueryOptions()));
  q = base;
  q.top_l = 3;
  keys.push_back(CacheKey::ForTopL(q, QueryOptions()));
  q = base;
  q.keywords = {1, 5};
  keys.push_back(CacheKey::ForTopL(q, QueryOptions()));
  // Pruning toggles select different executions; they key separately.
  QueryOptions options;
  options.use_score_pruning = false;
  keys.push_back(CacheKey::ForTopL(base, options));
  options = QueryOptions();
  options.use_reference_extraction = true;
  keys.push_back(CacheKey::ForTopL(base, options));
  // DTopL dimensions.
  keys.push_back(CacheKey::ForDTopL(base, DTopLOptions()));
  DTopLOptions dtopl;
  dtopl.n_factor = 3;
  keys.push_back(CacheKey::ForDTopL(base, dtopl));
  dtopl = DTopLOptions();
  dtopl.algorithm = DTopLAlgorithm::kGreedyWithoutPruning;
  keys.push_back(CacheKey::ForDTopL(base, dtopl));
  dtopl = DTopLOptions();
  dtopl.max_optimal_subsets = 123;
  keys.push_back(CacheKey::ForDTopL(base, dtopl));

  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (std::size_t j = i + 1; j < keys.size(); ++j) {
      EXPECT_NE(keys[i], keys[j]) << "keys " << i << " and " << j << " collide";
    }
  }
}

// ---------------------------------------------------------------------------
// Cache-level unit tests (no engine)
// ---------------------------------------------------------------------------

struct CacheFixture {
  Graph graph = MakeClique(5, 0.8);
  std::unique_ptr<PrecomputedData> pre;

  CacheFixture() {
    PrecomputeOptions options;
    options.r_max = 2;
    Result<PrecomputedData> built = PrecomputedData::Build(graph, options);
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    pre = std::make_unique<PrecomputedData>(std::move(built).value());
  }
};

TEST(QueryCacheTest, EpochBumpAloneKeepsCleanEntriesResident) {
  CacheFixture fx;
  QueryCache cache(QueryCache::Config{});
  const Query query = MakeQuery({0}, 3, 1, 0.2, 2);
  const CacheKey key = CacheKey::ForTopL(query, QueryOptions());

  QueryCache::LookupResult lookup = cache.Lookup(key);
  ASSERT_TRUE(lookup.leader);
  auto result = std::make_shared<TopLResult>();
  cache.FillTopL(key, lookup.flight, /*executed_epoch=*/0, result);
  EXPECT_EQ(cache.counters().entries, 1u);

  // An update whose dirty region is empty must not flush anything — the
  // epoch advances, the entry rebases in place.
  cache.OnUpdate({}, fx.graph, fx.graph, *fx.pre, /*new_epoch=*/1);
  EXPECT_EQ(cache.current_epoch(), 1u);
  EXPECT_EQ(cache.counters().entries, 1u);
  EXPECT_EQ(cache.counters().invalidated, 0u);
  EXPECT_TRUE(cache.Lookup(key).hit);

  // A fill whose execution started before the update is stale: published to
  // followers, never inserted.
  const Query other = MakeQuery({0}, 3, 1, 0.2, 3);
  const CacheKey other_key = CacheKey::ForTopL(other, QueryOptions());
  QueryCache::LookupResult stale = cache.Lookup(other_key);
  ASSERT_TRUE(stale.leader);
  cache.FillTopL(other_key, stale.flight, /*executed_epoch=*/0, result);
  EXPECT_EQ(cache.counters().entries, 1u);
  EXPECT_FALSE(cache.Lookup(other_key).hit);
}

TEST(QueryCacheTest, TruncatedResultsAreNeverInserted) {
  QueryCache cache(QueryCache::Config{});
  const Query query = MakeQuery({0}, 3, 1, 0.2, 2);
  const CacheKey key = CacheKey::ForTopL(query, QueryOptions());

  QueryCache::LookupResult lookup = cache.Lookup(key);
  ASSERT_TRUE(lookup.leader);
  auto truncated = std::make_shared<TopLResult>();
  truncated->truncated = true;
  cache.FillTopL(key, lookup.flight, /*executed_epoch=*/0, truncated);
  EXPECT_EQ(cache.counters().entries, 0u);
  EXPECT_FALSE(cache.Lookup(key).hit);
}

TEST(QueryCacheTest, SingleFlightCoalescesAndPropagatesFailure) {
  QueryCache cache(QueryCache::Config{});
  const Query query = MakeQuery({0}, 3, 1, 0.2, 2);
  const CacheKey key = CacheKey::ForTopL(query, QueryOptions());

  QueryCache::LookupResult leader = cache.Lookup(key);
  ASSERT_TRUE(leader.leader);

  // Concurrent identical lookups either join the flight (coalesced) or, if
  // they arrive after the fill, hit — never a second execution.
  std::atomic<int> answered{0};
  std::vector<std::thread> followers;
  for (int t = 0; t < 3; ++t) {
    followers.emplace_back([&] {
      QueryCache::LookupResult lookup = cache.Lookup(key);
      if (lookup.hit) {
        answered.fetch_add(1);
        return;
      }
      ASSERT_FALSE(lookup.leader);
      Result<QueryCache::CachedAnswer> shared = cache.Await(lookup.flight);
      ASSERT_TRUE(shared.ok());
      ASSERT_NE(shared->topl, nullptr);
      answered.fetch_add(1);
    });
  }
  auto result = std::make_shared<TopLResult>();
  cache.FillTopL(key, leader.flight, /*executed_epoch=*/0, result);
  for (std::thread& thread : followers) thread.join();
  EXPECT_EQ(answered.load(), 3);
  const QueryCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.hits + counters.coalesced, 3u);

  // A failed leader propagates its status; nothing is inserted.
  const Query failing = MakeQuery({7}, 3, 1, 0.2, 2);
  const CacheKey failing_key = CacheKey::ForTopL(failing, QueryOptions());
  QueryCache::LookupResult fail_leader = cache.Lookup(failing_key);
  ASSERT_TRUE(fail_leader.leader);
  // Abandon unregisters the flight, so a lookup after it would become a
  // fresh leader; hold the abandon until the follower has joined.
  std::atomic<bool> joined{false};
  std::thread follower([&] {
    QueryCache::LookupResult lookup = cache.Lookup(failing_key);
    joined.store(true);
    if (lookup.hit) {
      FAIL() << "abandoned flight must not produce a hit";
      return;
    }
    ASSERT_FALSE(lookup.leader);
    Result<QueryCache::CachedAnswer> shared = cache.Await(lookup.flight);
    EXPECT_FALSE(shared.ok());
  });
  while (!joined.load()) std::this_thread::yield();
  cache.Abandon(failing_key, fail_leader.flight,
                Status::InvalidArgument("boom"));
  follower.join();
  EXPECT_FALSE(cache.Lookup(failing_key).hit);
}

// ---------------------------------------------------------------------------
// Engine-level behavior
// ---------------------------------------------------------------------------

EngineOptions CachedEngineOptions(bool cached) {
  EngineOptions options;
  options.precompute.r_max = 2;
  options.precompute.signature_bits = 64;
  options.num_threads = 2;
  options.enable_result_cache = cached;
  return options;
}

Graph CopyGraph(const Graph& g) {
  Result<Graph> copy = ApplyDelta(g, GraphDelta());
  EXPECT_TRUE(copy.ok()) << copy.status().ToString();
  return std::move(copy).value();
}

// Two disconnected cliques with disjoint keywords: an update inside one
// cluster must leave the other cluster's cached answers resident (exact
// invalidation, not epoch flushing), and an update inside the cached
// cluster must invalidate them.
TEST(QueryCacheEngineTest, UnrelatedUpdateKeepsCleanEntriesResident) {
  GraphBuilder b(10);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) b.AddEdge(u, v, 0.8);
    b.AddKeyword(u, 1);
  }
  for (VertexId u = 5; u < 10; ++u) {
    for (VertexId v = u + 1; v < 10; ++v) b.AddEdge(u, v, 0.8);
    b.AddKeyword(u, 2);
  }
  Result<Graph> built = std::move(b).Build();
  ASSERT_TRUE(built.ok());
  const Graph base = CopyGraph(*built);

  Result<std::unique_ptr<Engine>> cached =
      Engine::FromGraph(std::move(built).value(), CachedEngineOptions(true));
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();

  const Query q_b = MakeQuery({2}, 4, 1, 0.2, 2);
  ASSERT_TRUE((*cached)->Search(q_b).ok());
  EngineStats stats = (*cached)->Stats();
  EXPECT_TRUE(stats.cache_enabled);
  EXPECT_EQ(stats.cache_misses, 1u);
  ASSERT_EQ(stats.cache_entries, 1u);

  // Update strictly inside cluster A (vertices 0-4): cluster B's entry is
  // outside the dirty region and no A-center can enter a keyword-2 answer.
  GraphDelta unrelated;
  unrelated.DeleteEdge(0, 1);
  ASSERT_TRUE((*cached)->ApplyUpdate(unrelated).ok());
  stats = (*cached)->Stats();
  EXPECT_EQ(stats.cache_invalidated, 0u);
  EXPECT_EQ(stats.cache_entries, 1u);

  // The surviving entry serves hits and still matches a cold engine over
  // the mutated graph.
  const std::uint64_t hits_before = stats.cache_hits;
  Result<Graph> mutated = ApplyDelta(base, unrelated);
  ASSERT_TRUE(mutated.ok());
  Result<std::unique_ptr<Engine>> cold =
      Engine::FromGraph(std::move(mutated).value(), CachedEngineOptions(false));
  ASSERT_TRUE(cold.ok());
  ExpectSameAnswer(cached->get(), cold->get(), q_b, /*diversified=*/false,
                   "clean entry after unrelated update");
  EXPECT_EQ((*cached)->Stats().cache_hits, hits_before + 1);

  // An update inside cluster B invalidates the entry.
  GraphDelta related;
  related.DeleteEdge(5, 6);
  ASSERT_TRUE((*cached)->ApplyUpdate(related).ok());
  stats = (*cached)->Stats();
  EXPECT_GE(stats.cache_invalidated, 1u);
  EXPECT_EQ(stats.cache_entries, 0u);
}

// The invalidation-exactness sweep: random graphs, random query pools,
// random update streams. After every ApplyUpdate, every previously-cached
// query is re-issued on the cached engine and compared field-by-field
// against an engine that never caches — fills, repeat hits, and
// invalidation survivors all have to be byte-identical.
TEST(QueryCacheEngineTest, SweepCachedAnswersMatchUncachedAcrossUpdates) {
  for (std::uint64_t graph_seed = 0; graph_seed < 20; ++graph_seed) {
    ErdosRenyiOptions gen;
    gen.num_vertices = 70;
    gen.edge_prob = 0.09;
    gen.seed = 1000 + graph_seed;
    gen.keywords.domain_size = 12;
    Result<Graph> graph = MakeErdosRenyi(gen);
    ASSERT_TRUE(graph.ok());
    Graph mirror = CopyGraph(*graph);

    Result<std::unique_ptr<Engine>> cached =
        Engine::FromGraph(CopyGraph(*graph), CachedEngineOptions(true));
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    Result<std::unique_ptr<Engine>> uncached =
        Engine::FromGraph(std::move(graph).value(), CachedEngineOptions(false));
    ASSERT_TRUE(uncached.ok()) << uncached.status().ToString();

    Rng rng(2000 + graph_seed);
    std::vector<std::pair<Query, bool>> pool;
    for (int qi = 0; qi < 5; ++qi) {
      Query q;
      q.keywords = SampleQueryKeywords(mirror, rng, 2);
      if (q.keywords.empty()) continue;
      q.k = 3 + static_cast<std::uint32_t>(rng.NextBounded(2));
      q.radius = 1 + static_cast<std::uint32_t>(rng.NextBounded(2));
      q.theta = qi % 2 == 0 ? 0.2 : 0.1;
      q.top_l = 3;
      pool.emplace_back(std::move(q), qi % 3 == 2);
    }
    ASSERT_FALSE(pool.empty());

    RandomDeltaOptions delta_options;
    delta_options.num_ops = 5;
    delta_options.keyword_domain = 12;
    for (int round = 0; round < 3; ++round) {
      const std::string context = "graph " + std::to_string(graph_seed) +
                                  " round " + std::to_string(round);
      for (const auto& [query, diversified] : pool) {
        ExpectSameAnswer(cached->get(), uncached->get(), query, diversified,
                         context);
      }
      const GraphDelta delta =
          MakeRandomDelta(*(*cached)->snapshot()->graph, rng, delta_options);
      if (delta.empty()) continue;
      ASSERT_TRUE((*cached)->ApplyUpdate(delta).ok());
      ASSERT_TRUE((*uncached)->ApplyUpdate(delta).ok());
      for (const auto& [query, diversified] : pool) {
        ExpectSameAnswer(cached->get(), uncached->get(), query, diversified,
                         context + " post-update");
      }
    }
    // The cache must have actually served traffic in this sweep — every
    // repeat of a resident key is a hit.
    EXPECT_GT((*cached)->Stats().cache_hits, 0u) << "graph " << graph_seed;
  }
}

TEST(QueryCacheEngineTest, EvictionBoundsResidency) {
  ErdosRenyiOptions gen;
  gen.num_vertices = 80;
  gen.edge_prob = 0.08;
  gen.seed = 77;
  gen.keywords.domain_size = 12;
  Result<Graph> graph = MakeErdosRenyi(gen);
  ASSERT_TRUE(graph.ok());
  const Graph base = CopyGraph(*graph);

  EngineOptions options = CachedEngineOptions(true);
  options.cache_max_bytes = 2048;  // a few hundred answers will not fit
  Result<std::unique_ptr<Engine>> engine =
      Engine::FromGraph(std::move(graph).value(), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  Rng rng(5);
  for (int i = 0; i < 48; ++i) {
    Query q;
    q.keywords = SampleQueryKeywords(base, rng, 2);
    ASSERT_FALSE(q.keywords.empty());
    q.k = 3 + static_cast<std::uint32_t>(i % 2);
    q.radius = 1 + static_cast<std::uint32_t>(i % 2);
    q.theta = 0.2;
    q.top_l = 1 + static_cast<std::uint32_t>(i % 6);
    ASSERT_TRUE((*engine)->Search(q).ok());
  }
  const EngineStats stats = (*engine)->Stats();
  EXPECT_GT(stats.cache_evicted, 0u);
  // Each of the 16 shards keeps at most one over-budget entry alive.
  EXPECT_LE(stats.cache_entries, 16u);
  EXPECT_GT(stats.cache_bytes, 0u);
  EXPECT_NE(stats.ToString().find("cache{"), std::string::npos);
}

// TSan coverage: concurrent identical + distinct queries (single-flight
// leaders, followers, and hits), a live ApplyUpdate stream (invalidation +
// epoch rebasing), and a tiny byte budget (eviction) all racing.
TEST(QueryCacheEngineTest, ConcurrentSearchUpdateEvictionIsRaceFree) {
  ErdosRenyiOptions gen;
  gen.num_vertices = 60;
  gen.edge_prob = 0.1;
  gen.seed = 33;
  gen.keywords.domain_size = 12;
  Result<Graph> graph = MakeErdosRenyi(gen);
  ASSERT_TRUE(graph.ok());
  const Graph base = CopyGraph(*graph);

  EngineOptions options = CachedEngineOptions(true);
  options.cache_max_bytes = 8192;
  Result<std::unique_ptr<Engine>> engine =
      Engine::FromGraph(std::move(graph).value(), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  Rng pool_rng(9);
  std::vector<Query> pool;
  for (int qi = 0; qi < 6; ++qi) {
    Query q;
    q.keywords = SampleQueryKeywords(base, pool_rng, 2);
    if (q.keywords.empty()) continue;
    q.k = 3;
    q.radius = 1 + static_cast<std::uint32_t>(qi % 2);
    q.theta = 0.2;
    q.top_l = 2 + static_cast<std::uint32_t>(qi % 3);
    pool.push_back(std::move(q));
  }
  ASSERT_FALSE(pool.empty());

  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < 40; ++i) {
        const Query& q = pool[rng.NextBounded(pool.size())];
        if (i % 5 == 4) {
          if (!(*engine)->SearchDiversified(q, DTopLOptions()).ok()) {
            failures.fetch_add(1);
          }
        } else if (!(*engine)->Search(q).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  std::thread updater([&] {
    Rng rng(7);
    RandomDeltaOptions delta_options;
    delta_options.num_ops = 3;
    delta_options.keyword_domain = 12;
    for (int u = 0; u < 6; ++u) {
      const GraphDelta delta =
          MakeRandomDelta(*(*engine)->snapshot()->graph, rng, delta_options);
      if (delta.empty()) continue;
      if (!(*engine)->ApplyUpdate(delta).ok()) failures.fetch_add(1);
    }
  });
  for (std::thread& worker : workers) worker.join();
  updater.join();

  EXPECT_EQ(failures.load(), 0u);
  const EngineStats stats = (*engine)->Stats();
  // Every lookup resolved exactly one way; the counters must account for
  // all of them.
  EXPECT_GT(stats.cache_hits + stats.cache_misses + stats.cache_coalesced, 0u);
  EXPECT_GE(stats.cache_misses, 1u);
}

}  // namespace
}  // namespace topl

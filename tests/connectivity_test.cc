#include "graph/connectivity.h"

#include "graph/bfs.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace topl {
namespace {

using testing::MakeGraph;

TEST(ConnectivityTest, SingleComponent) {
  const Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  const ComponentLabels labels = ConnectedComponents(g);
  EXPECT_EQ(labels.num_components, 1u);
  EXPECT_TRUE(IsConnected(g));
}

TEST(ConnectivityTest, MultipleComponents) {
  const Graph g = MakeGraph(6, {{0, 1}, {2, 3}, {3, 4}});
  const ComponentLabels labels = ConnectedComponents(g);
  EXPECT_EQ(labels.num_components, 3u);  // {0,1}, {2,3,4}, {5}
  EXPECT_FALSE(IsConnected(g));
  EXPECT_EQ(labels.label[0], labels.label[1]);
  EXPECT_EQ(labels.label[2], labels.label[3]);
  EXPECT_EQ(labels.label[3], labels.label[4]);
  EXPECT_NE(labels.label[0], labels.label[2]);
  EXPECT_NE(labels.label[0], labels.label[5]);
}

TEST(ConnectivityTest, LargestComponent) {
  const Graph g = MakeGraph(7, {{0, 1}, {2, 3}, {3, 4}, {4, 5}});
  const std::vector<VertexId> largest = LargestComponent(g);
  EXPECT_EQ(largest, (std::vector<VertexId>{2, 3, 4, 5}));
}

TEST(ConnectivityTest, EmptyGraphIsConnected) {
  GraphBuilder b(0);
  Result<Graph> g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(IsConnected(*g));
}

TEST(BfsTest, Distances) {
  const Graph g = MakeGraph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto dist = BfsDistances(g, 0, 10);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], 3u);
  EXPECT_EQ(dist[4], 4u);
  EXPECT_EQ(dist[5], kUnreachedDistance);
}

TEST(BfsTest, TruncationAtMaxDist) {
  const Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto dist = BfsDistances(g, 0, 2);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], kUnreachedDistance);
  EXPECT_EQ(CountWithinRadius(g, 0, 2), 3u);
}

TEST(BfsTest, ShortestOfMultiplePaths) {
  // 0-1-2-3 chain plus shortcut 0-3.
  const Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  const auto dist = BfsDistances(g, 0, 10);
  EXPECT_EQ(dist[3], 1u);
  EXPECT_EQ(dist[2], 2u);
}

}  // namespace
}  // namespace topl

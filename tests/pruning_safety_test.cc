#include "core/brute_force.h"
#include "core/topl_detector.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace topl {
namespace {

using testing::BuildIndexFor;
using testing::BuiltIndex;
using testing::Scores;

// Safety of each pruning rule (Lemmas 1/2/4 at candidate level, 5/6/7 at
// index level): enabling any subset of rules must never change the returned
// score multiset — pruning removes only false alarms.
class PruningSafetyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static QueryOptions Combo(bool kw, bool sup, bool score) {
    QueryOptions o;
    o.use_keyword_pruning = kw;
    o.use_support_pruning = sup;
    o.use_score_pruning = score;
    return o;
  }
};

TEST_P(PruningSafetyTest, AllCombosMatchBruteForce) {
  SmallWorldOptions gen;
  gen.num_vertices = 160;
  gen.seed = GetParam();
  gen.keywords.domain_size = 12;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  const BuiltIndex built = BuildIndexFor(*g);
  TopLDetector detector(*g, built.pre(), built.tree);

  Query q;
  q.keywords = {0, 2, 5, 7, 11};
  q.k = 3;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 5;

  Result<TopLResult> brute = BruteForceTopL(*g, q);
  ASSERT_TRUE(brute.ok());
  const auto expected = Scores(brute->communities);

  for (int mask = 0; mask < 8; ++mask) {
    const QueryOptions options =
        Combo((mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0);
    Result<TopLResult> result = detector.Search(q, options);
    ASSERT_TRUE(result.ok());
    const auto got = Scores(result->communities);
    ASSERT_EQ(got.size(), expected.size()) << "mask " << mask;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i], expected[i], 1e-9) << "mask " << mask << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PruningSafetyTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

TEST(CenterTrussSafetyTest, ToggleNeverChangesAnswers) {
  // The strengthened support rule (center trussness within the ball) must be
  // a pure optimization: answers with and without it coincide for every k.
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    SmallWorldOptions gen;
    gen.num_vertices = 150;
    gen.seed = seed;
    gen.keywords.domain_size = 10;
    Result<Graph> g = MakeSmallWorld(gen);
    ASSERT_TRUE(g.ok());
    const BuiltIndex built = BuildIndexFor(*g);
    TopLDetector detector(*g, built.pre(), built.tree);
    for (std::uint32_t k : {3u, 4u, 5u}) {
      Query q;
      q.keywords = {0, 2, 5};
      q.k = k;
      q.radius = 2;
      q.theta = 0.2;
      q.top_l = 5;
      QueryOptions with;
      with.use_center_truss_bound = true;
      QueryOptions without;
      without.use_center_truss_bound = false;
      Result<TopLResult> a = detector.Search(q, with);
      Result<TopLResult> b = detector.Search(q, without);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      const auto sa = Scores(a->communities);
      const auto sb = Scores(b->communities);
      ASSERT_EQ(sa.size(), sb.size()) << "seed " << seed << " k " << k;
      for (std::size_t i = 0; i < sa.size(); ++i) {
        EXPECT_NEAR(sa[i], sb[i], 1e-9);
      }
      // And it never refines *more* candidates.
      EXPECT_LE(a->stats.candidates_refined, b->stats.candidates_refined);
    }
  }
}

TEST(PruningEffectivenessTest, MorePruningNeverRefinesMore) {
  // Adding pruning rules monotonically reduces refinement work — the
  // mechanism behind the paper's Fig. 4 ablation.
  SmallWorldOptions gen;
  gen.num_vertices = 250;
  gen.seed = 99;
  gen.keywords.domain_size = 12;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  const BuiltIndex built = BuildIndexFor(*g);
  TopLDetector detector(*g, built.pre(), built.tree);

  Query q;
  q.keywords = {0, 2, 5};
  q.k = 4;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 5;

  QueryOptions none;
  none.use_keyword_pruning = false;
  none.use_support_pruning = false;
  none.use_score_pruning = false;
  QueryOptions kw = none;
  kw.use_keyword_pruning = true;
  QueryOptions kw_sup = kw;
  kw_sup.use_support_pruning = true;
  QueryOptions all = kw_sup;
  all.use_score_pruning = true;

  const auto r_none = detector.Search(q, none);
  const auto r_kw = detector.Search(q, kw);
  const auto r_kw_sup = detector.Search(q, kw_sup);
  const auto r_all = detector.Search(q, all);
  ASSERT_TRUE(r_none.ok());
  ASSERT_TRUE(r_kw.ok());
  ASSERT_TRUE(r_kw_sup.ok());
  ASSERT_TRUE(r_all.ok());

  EXPECT_EQ(r_none->stats.candidates_refined, g->NumVertices());
  EXPECT_LE(r_kw->stats.candidates_refined, r_none->stats.candidates_refined);
  EXPECT_LE(r_kw_sup->stats.candidates_refined, r_kw->stats.candidates_refined);
  EXPECT_LE(r_all->stats.candidates_refined, r_kw_sup->stats.candidates_refined);
  // Pruned-candidate counts grow with each added rule.
  EXPECT_GE(r_kw_sup->stats.TotalPruned(), r_kw->stats.TotalPruned());
  EXPECT_GE(r_all->stats.TotalPruned(), r_kw_sup->stats.TotalPruned());
}

TEST(PruningEffectivenessTest, ScorePruningActuallyFires) {
  // On a workload with many candidates, the score rule must prune a
  // non-trivial number once L results are collected (otherwise Lemma 4/7 is
  // dead code).
  SmallWorldOptions gen;
  gen.num_vertices = 300;
  gen.seed = 100;
  gen.keywords.domain_size = 8;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  const BuiltIndex built = BuildIndexFor(*g);
  TopLDetector detector(*g, built.pre(), built.tree);
  Query q;
  q.keywords = {0, 1, 2, 3, 4};
  q.k = 3;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 2;
  const auto result = detector.Search(q);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.pruned_score + result->stats.pruned_termination, 0u);
}

}  // namespace
}  // namespace topl

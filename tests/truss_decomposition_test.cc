#include "truss/truss_decomposition.h"

#include "graph/generators.h"
#include "graph/local_subgraph.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "truss/support.h"

namespace topl {
namespace {

using testing::MakeClique;
using testing::MakeGraph;

// Reference trussness: for each k, peel the whole graph to its maximal
// k-truss; an edge's trussness is the largest k at which it survives.
std::vector<std::uint32_t> ReferenceTrussness(const Graph& g) {
  HopExtractor ex(g);
  LocalGraph lg;
  std::vector<std::uint32_t> trussness(g.NumEdges(), 2);
  if (g.NumEdges() == 0) return trussness;
  // The graph may be disconnected; run from every component via a virtual
  // full extraction per vertex is wasteful — instead reuse local ids by
  // extracting per component root.
  std::vector<char> seen(g.NumVertices(), 0);
  for (VertexId root = 0; root < g.NumVertices(); ++root) {
    if (seen[root]) continue;
    if (!ex.Extract(root, static_cast<std::uint32_t>(g.NumVertices()), {}, &lg)) {
      continue;
    }
    for (VertexId v : lg.global_ids) seen[v] = 1;
    for (std::uint32_t k = 3; k <= 16; ++k) {
      std::vector<char> alive(lg.NumEdges(), 1);
      auto sup = ComputeLocalEdgeSupports(lg, alive);
      PeelToKTruss(lg, k, &alive, &sup);
      bool any = false;
      for (std::uint32_t e = 0; e < lg.NumEdges(); ++e) {
        if (alive[e]) {
          trussness[lg.global_edge_ids[e]] = k;
          any = true;
        }
      }
      if (!any) break;
    }
  }
  return trussness;
}

TEST(TrussDecompositionTest, TriangleIsThreeTruss) {
  const Graph g = MakeGraph(3, {{0, 1}, {1, 2}, {0, 2}});
  const auto t = TrussDecomposition(g);
  for (EdgeId e = 0; e < 3; ++e) EXPECT_EQ(t[e], 3u);
}

TEST(TrussDecompositionTest, PathIsTwoTruss) {
  const Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto t = TrussDecomposition(g);
  for (EdgeId e = 0; e < 3; ++e) EXPECT_EQ(t[e], 2u);
}

TEST(TrussDecompositionTest, CliqueIsNTruss) {
  const Graph g = MakeClique(6);
  const auto t = TrussDecomposition(g);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) EXPECT_EQ(t[e], 6u);
}

TEST(TrussDecompositionTest, CliqueWithPendant) {
  // K4 {0..3} plus pendant edge 3-4.
  Graph g = MakeGraph(5, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}});
  const auto t = TrussDecomposition(g);
  const EdgeId pendant = g.FindEdge(3, 4);
  ASSERT_NE(pendant, kInvalidEdge);
  EXPECT_EQ(t[pendant], 2u);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (e != pendant) {
      EXPECT_EQ(t[e], 4u);
    }
  }
}

TEST(TrussDecompositionTest, MixedStructure) {
  // Two triangles sharing an edge: all edges are 3-truss (shared edge's
  // support is 2 but its triangles' side edges only reach level 3).
  const Graph g = MakeGraph(4, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}});
  const auto t = TrussDecomposition(g);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) EXPECT_EQ(t[e], 3u);
}

class TrussnessPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrussnessPropertyTest, MatchesPeelingReference) {
  ErdosRenyiOptions opts;
  opts.num_vertices = 45;
  opts.edge_prob = 0.2;
  opts.seed = GetParam();
  Result<Graph> g = MakeErdosRenyi(opts);
  ASSERT_TRUE(g.ok());
  const auto fast = TrussDecomposition(*g);
  const auto reference = ReferenceTrussness(*g);
  EXPECT_EQ(fast, reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrussnessPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(VertexTrussnessTest, MaxOverIncidentEdges) {
  // Triangle {0,1,2} + pendant 2-3.
  const Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const auto et = TrussDecomposition(g);
  const auto vt = VertexTrussness(g, et);
  EXPECT_EQ(vt[0], 3u);
  EXPECT_EQ(vt[1], 3u);
  EXPECT_EQ(vt[2], 3u);
  EXPECT_EQ(vt[3], 2u);
}

TEST(VertexTrussnessTest, IsolatedVertexIsZero) {
  const Graph g = MakeGraph(3, {{0, 1}});
  const auto vt = VertexTrussness(g, TrussDecomposition(g));
  EXPECT_EQ(vt[2], 0u);
}

// The offline phase trusts LocalTrussDecomposition to agree with the global
// algorithm; verify edge-for-edge on full extractions of random graphs.
class LocalTrussPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalTrussPropertyTest, MatchesGlobalOnFullExtraction) {
  ErdosRenyiOptions opts;
  opts.num_vertices = 60;
  opts.edge_prob = 0.15;
  opts.seed = GetParam();
  Result<Graph> g = MakeErdosRenyi(opts);
  ASSERT_TRUE(g.ok());
  const auto global = TrussDecomposition(*g);
  const auto vertex_global = VertexTrussness(*g, global);
  HopExtractor ex(*g);
  LocalGraph lg;
  for (VertexId center : {VertexId{0}, VertexId{10}, VertexId{42}}) {
    ASSERT_TRUE(ex.Extract(center, static_cast<std::uint32_t>(g->NumVertices()),
                           {}, &lg));
    ASSERT_EQ(lg.NumEdges(), g->NumEdges());  // connected: full coverage
    std::vector<std::uint32_t> initial_supports;
    const auto local = LocalTrussDecomposition(lg, &initial_supports);
    const auto reference_sup =
        ComputeLocalEdgeSupports(lg, std::vector<char>(lg.NumEdges(), 1));
    EXPECT_EQ(initial_supports, reference_sup);
    for (std::uint32_t e = 0; e < lg.NumEdges(); ++e) {
      EXPECT_EQ(local[e], global[lg.global_edge_ids[e]]) << "edge " << e;
    }
    EXPECT_EQ(LocalCenterTrussness(lg, local), vertex_global[center]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalTrussPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(LocalTrussTest, EmptyBall) {
  // A keyword-isolated center: ball with one vertex and no edges.
  const Graph g = MakeGraph(2, {{0, 1}});
  HopExtractor ex(g);
  LocalGraph lg;
  ASSERT_TRUE(ex.Extract(0, 0, {}, &lg));
  EXPECT_EQ(lg.NumEdges(), 0u);
  const auto trussness = LocalTrussDecomposition(lg);
  EXPECT_TRUE(trussness.empty());
  EXPECT_EQ(LocalCenterTrussness(lg, trussness), 2u);
}

TEST(TrussDecompositionTest, ParallelSupportAgreement) {
  ErdosRenyiOptions opts;
  opts.num_vertices = 80;
  opts.edge_prob = 0.15;
  opts.seed = 21;
  Result<Graph> g = MakeErdosRenyi(opts);
  ASSERT_TRUE(g.ok());
  ThreadPool pool(4);
  EXPECT_EQ(TrussDecomposition(*g), TrussDecomposition(*g, &pool));
}

}  // namespace
}  // namespace topl

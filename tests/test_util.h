#ifndef TOPL_TESTS_TEST_UTIL_H_
#define TOPL_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "topl.h"

namespace topl {
namespace testing {

/// Builds a graph from an edge list with symmetric probability `prob` and no
/// keywords. Aborts the test on builder failure.
inline Graph MakeGraph(std::size_t n,
                       const std::vector<std::pair<VertexId, VertexId>>& edges,
                       double prob = 0.5) {
  GraphBuilder b(n);
  for (const auto& [u, v] : edges) b.AddEdge(u, v, prob);
  Result<Graph> g = std::move(b).Build();
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

/// Builds a graph where every vertex additionally gets the listed keywords.
inline Graph MakeKeywordGraph(
    std::size_t n, const std::vector<std::pair<VertexId, VertexId>>& edges,
    const std::vector<std::vector<KeywordId>>& keywords, double prob = 0.5) {
  GraphBuilder b(n);
  for (const auto& [u, v] : edges) b.AddEdge(u, v, prob);
  for (VertexId v = 0; v < keywords.size(); ++v) {
    for (KeywordId w : keywords[v]) b.AddKeyword(v, w);
  }
  Result<Graph> g = std::move(b).Build();
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

/// The complete graph K_n; every vertex carries keyword 0.
inline Graph MakeClique(std::size_t n, double prob = 0.5) {
  GraphBuilder b(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) b.AddEdge(u, v, prob);
    b.AddKeyword(u, 0);
  }
  Result<Graph> g = std::move(b).Build();
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

/// A miniature of the paper's Fig. 1 scenario: a K4 "movies" core
/// {0, 1, 2, 3} (a 4-truss), a weaker triangle {4, 5, 6}, and a chain of
/// influenced users hanging off the core. Keyword ids: 0 = movies,
/// 1 = books, 2 = health.
inline Graph MakeFig1Like() {
  GraphBuilder b(11);
  const double strong = 0.8;
  const double weak = 0.5;
  // K4 core.
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) b.AddEdge(u, v, strong);
  }
  // Side triangle (only a 3-truss).
  b.AddEdge(4, 5, weak);
  b.AddEdge(5, 6, weak);
  b.AddEdge(4, 6, weak);
  // Bridge core -> triangle and an influence chain 3 -> 7 -> 8 -> 9 -> 10.
  b.AddEdge(0, 4, weak);
  b.AddEdge(3, 7, strong);
  b.AddEdge(7, 8, strong);
  b.AddEdge(8, 9, strong);
  b.AddEdge(9, 10, strong);
  for (VertexId v = 0; v < 4; ++v) b.AddKeyword(v, 0);
  b.AddKeyword(0, 1);
  for (VertexId v = 4; v < 7; ++v) b.AddKeyword(v, 2);
  for (VertexId v = 7; v < 11; ++v) {
    b.AddKeyword(v, 0);
    b.AddKeyword(v, 1);
  }
  Result<Graph> g = std::move(b).Build();
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

/// O(n·deg²) reference triangle count per edge (independent of the library's
/// intersection-based implementation).
inline std::vector<std::uint32_t> ReferenceSupports(const Graph& g) {
  std::vector<std::uint32_t> support(g.NumEdges(), 0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const VertexId u = g.EdgeSource(e);
    const VertexId v = g.EdgeTarget(e);
    for (const Graph::Arc& arc : g.Neighbors(u)) {
      if (arc.to != v && g.HasEdge(arc.to, v)) ++support[e];
    }
  }
  return support;
}

/// Exhaustive upp(u, v) by enumerating every simple path (exponential; tiny
/// graphs only). Returns 0 when v is unreachable.
inline double ReferenceUpp(const Graph& g, VertexId source, VertexId target) {
  if (source == target) return 1.0;
  std::vector<char> on_path(g.NumVertices(), 0);
  double best = 0.0;
  auto dfs = [&](auto&& self, VertexId u, double prob) -> void {
    if (u == target) {
      best = std::max(best, prob);
      return;
    }
    on_path[u] = 1;
    for (const Graph::Arc& arc : g.Neighbors(u)) {
      if (!on_path[arc.to]) {
        self(self, arc.to, prob * static_cast<double>(arc.prob));
      }
    }
    on_path[u] = 0;
  };
  dfs(dfs, source, 1.0);
  return best;
}

/// Verifies every Definition 2 constraint of a seed community with
/// independent re-computation over the induced subgraph.
inline ::testing::AssertionResult VerifySeedCommunity(const Graph& g,
                                                      const Query& query,
                                                      const SeedCommunity& c) {
  if (c.empty()) return ::testing::AssertionFailure() << "community is empty";
  const std::set<VertexId> members(c.vertices.begin(), c.vertices.end());
  if (members.count(c.center) == 0) {
    return ::testing::AssertionFailure() << "center not a member";
  }
  if (members.size() != c.vertices.size()) {
    return ::testing::AssertionFailure() << "duplicate member vertices";
  }
  // Bullet 4: every member holds a query keyword.
  for (VertexId v : members) {
    if (!HopExtractor::HasAnyKeyword(g, v, query.keywords)) {
      return ::testing::AssertionFailure()
             << "vertex " << v << " has no query keyword";
    }
  }
  // Induced adjacency restricted to the community's *edge set* (the k-truss
  // structure), not all member-to-member edges of G.
  std::map<VertexId, std::vector<VertexId>> adj;
  std::set<std::pair<VertexId, VertexId>> edge_set;
  for (EdgeId e : c.edges) {
    const VertexId a = g.EdgeSource(e);
    const VertexId b = g.EdgeTarget(e);
    if (members.count(a) == 0 || members.count(b) == 0) {
      return ::testing::AssertionFailure()
             << "edge {" << a << "," << b << "} leaves the community";
    }
    adj[a].push_back(b);
    adj[b].push_back(a);
    edge_set.emplace(std::min(a, b), std::max(a, b));
  }
  // Bullet 3: k-truss — every community edge closes >= k-2 triangles whose
  // edges are community edges.
  for (const auto& [a, b] : edge_set) {
    std::uint32_t triangles = 0;
    for (VertexId w : adj[a]) {
      if (w == b) continue;
      const auto key = std::make_pair(std::min(w, b), std::max(w, b));
      if (edge_set.count(key) != 0) ++triangles;
    }
    if (query.k >= 2 && triangles < query.k - 2) {
      return ::testing::AssertionFailure()
             << "edge {" << a << "," << b << "} has support " << triangles
             << " < k-2=" << query.k - 2;
    }
  }
  // Bullets 1-2: connectivity and radius from the center, measured inside
  // the community.
  std::map<VertexId, std::uint32_t> dist;
  dist[c.center] = 0;
  std::vector<VertexId> frontier = {c.center};
  while (!frontier.empty()) {
    std::vector<VertexId> next;
    for (VertexId u : frontier) {
      for (VertexId w : adj[u]) {
        if (dist.count(w) == 0) {
          dist[w] = dist[u] + 1;
          next.push_back(w);
        }
      }
    }
    frontier.swap(next);
  }
  for (VertexId v : members) {
    auto it = dist.find(v);
    if (it == dist.end()) {
      return ::testing::AssertionFailure()
             << "vertex " << v << " disconnected from center";
    }
    if (it->second > query.radius) {
      return ::testing::AssertionFailure()
             << "vertex " << v << " at distance " << it->second << " > r="
             << query.radius;
    }
  }
  return ::testing::AssertionSuccess();
}

/// Score multiset of a result list (for index-vs-bruteforce equivalence; the
/// particular communities may differ under ties, the scores may not).
inline std::vector<double> Scores(const std::vector<CommunityResult>& results) {
  std::vector<double> out;
  out.reserve(results.size());
  for (const CommunityResult& r : results) out.push_back(r.score());
  return out;
}

/// Builds precompute + tree index with the given options; aborts on failure.
/// PrecomputedData sits behind a unique_ptr so the TreeIndex's back-pointer
/// stays valid when BuiltIndex moves.
struct BuiltIndex {
  std::unique_ptr<PrecomputedData> data;
  TreeIndex tree;

  const PrecomputedData& pre() const { return *data; }
};

inline BuiltIndex BuildIndexFor(const Graph& g,
                                PrecomputeOptions pre_opts = PrecomputeOptions(),
                                TreeIndexOptions tree_opts = TreeIndexOptions()) {
  Result<PrecomputedData> pre = PrecomputedData::Build(g, pre_opts);
  EXPECT_TRUE(pre.ok()) << pre.status().ToString();
  BuiltIndex built;
  built.data = std::make_unique<PrecomputedData>(std::move(pre).value());
  Result<TreeIndex> tree = TreeIndex::Build(g, *built.data, tree_opts);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  built.tree = std::move(tree).value();
  return built;
}

}  // namespace testing
}  // namespace topl

#endif  // TOPL_TESTS_TEST_UTIL_H_

#include "graph/graph_builder.h"

#include "gtest/gtest.h"

namespace topl {
namespace {

TEST(GraphBuilderTest, RejectsSelfLoop) {
  GraphBuilder b(3);
  b.AddEdge(1, 1, 0.5);
  Result<Graph> g = std::move(b).Build();
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsCorruption());
}

TEST(GraphBuilderTest, RejectsDuplicateEdge) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 0.5);
  b.AddEdge(1, 0, 0.6);  // same undirected edge, opposite orientation
  Result<Graph> g = std::move(b).Build();
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsCorruption());
}

// Duplicates must fail with a message naming the pair — never silently
// last-write-wins on the probability — in both same-order and
// opposite-order arc insertions.
TEST(GraphBuilderTest, DuplicateEdgeDiagnosticNamesThePair) {
  {
    GraphBuilder b(3);
    b.AddEdge(0, 1, 0.5);
    b.AddEdge(0, 1, 0.9);  // same orientation, different probability
    Result<Graph> g = std::move(b).Build();
    ASSERT_FALSE(g.ok());
    EXPECT_TRUE(g.status().IsCorruption());
    EXPECT_NE(g.status().ToString().find("duplicate undirected edge {0, 1}"),
              std::string::npos)
        << g.status().ToString();
  }
  {
    GraphBuilder b(3);
    b.AddEdge(2, 1, 0.5);
    b.AddEdge(1, 2, 0.9);  // opposite orientation
    Result<Graph> g = std::move(b).Build();
    ASSERT_FALSE(g.ok());
    EXPECT_TRUE(g.status().IsCorruption());
    // Both orders collapse to the canonical u < v pair in the diagnostic.
    EXPECT_NE(g.status().ToString().find("duplicate undirected edge {1, 2}"),
              std::string::npos)
        << g.status().ToString();
  }
}

TEST(GraphBuilderTest, RejectsOutOfRangeEndpoint) {
  GraphBuilder b(2);
  b.AddEdge(0, 5, 0.5);
  Result<Graph> g = std::move(b).Build();
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsInvalidArgument());
}

TEST(GraphBuilderTest, RejectsZeroProbability) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 0.0);
  Result<Graph> g = std::move(b).Build();
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsInvalidArgument());
}

TEST(GraphBuilderTest, RejectsProbabilityAboveOne) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 1.5);
  Result<Graph> g = std::move(b).Build();
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsInvalidArgument());
}

TEST(GraphBuilderTest, ProbabilityOneIsAllowed) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 1.0);
  EXPECT_TRUE(std::move(b).Build().ok());
}

TEST(GraphBuilderTest, FirstErrorWins) {
  GraphBuilder b(2);
  b.AddEdge(0, 9, 0.5);  // out of range
  b.AddEdge(0, 0, 0.5);  // self loop (would be Corruption)
  Result<Graph> g = std::move(b).Build();
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsInvalidArgument());
}

TEST(GraphBuilderTest, RejectsOutOfRangeKeywordVertex) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 0.5);
  b.AddKeyword(7, 0);
  Result<Graph> g = std::move(b).Build();
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsInvalidArgument());
}

TEST(GraphBuilderTest, DeduplicatesKeywords) {
  GraphBuilder b(1);
  b.AddKeyword(0, 4);
  b.AddKeyword(0, 4);
  b.AddKeyword(0, 2);
  Result<Graph> g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->Keywords(0).size(), 2u);
  EXPECT_EQ(g->Keywords(0)[0], 2u);
  EXPECT_EQ(g->Keywords(0)[1], 4u);
}

TEST(GraphBuilderTest, PendingEdgeCount) {
  GraphBuilder b(4);
  EXPECT_EQ(b.num_pending_edges(), 0u);
  b.AddEdge(0, 1, 0.5);
  b.AddEdge(2, 3, 0.5);
  EXPECT_EQ(b.num_pending_edges(), 2u);
  EXPECT_EQ(b.num_vertices(), 4u);
}

TEST(GraphBuilderTest, LargeFanStaysSorted) {
  // A star with hub 50: hub arcs must come out sorted even though edges are
  // inserted in scrambled order.
  GraphBuilder b(101);
  for (VertexId v = 100; v > 50; --v) b.AddEdge(50, v, 0.5);
  for (VertexId v = 0; v < 50; ++v) b.AddEdge(v, 50, 0.5);
  Result<Graph> g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  const auto arcs = g->Neighbors(50);
  ASSERT_EQ(arcs.size(), 100u);
  for (std::size_t i = 1; i < arcs.size(); ++i) {
    EXPECT_LT(arcs[i - 1].to, arcs[i].to);
  }
}

}  // namespace
}  // namespace topl

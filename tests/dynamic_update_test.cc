// The dynamic-update contract: after any sequence of graph deltas,
// incremental maintenance (IndexUpdater / Engine::ApplyUpdate) must produce
// TopL and DTopL answers byte-identical to a full offline rebuild of the
// mutated graph — same communities, same member/edge lists, bit-identical
// scores and cpp values. A 20-graph × random-update-stream sweep enforces
// exactly that, alongside targeted cases (deletes that disconnect a
// component, keyword shrink below the query keywords), engine snapshot
// isolation, and a concurrent ApplyUpdate-vs-Search race for TSan.

#include "index/index_update.h"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "topl.h"

namespace topl {
namespace {

using testing::MakeGraph;
using testing::MakeKeywordGraph;

PrecomputeOptions SweepPrecomputeOptions() {
  PrecomputeOptions options;
  options.r_max = 2;
  options.signature_bits = 64;
  return options;
}

/// Owned copy of a graph (base + empty delta ≡ from-scratch rebuild of the
/// same edge/keyword lists).
Graph CopyGraph(const Graph& g) {
  Result<Graph> copy = ApplyDelta(g, GraphDelta());
  EXPECT_TRUE(copy.ok()) << copy.status().ToString();
  return std::move(copy).value();
}

/// The current incremental pipeline state: graph + offline phase, advanced
/// delta by delta through IndexUpdater::Apply.
struct Pipeline {
  Graph graph;
  std::unique_ptr<PrecomputedData> pre;
  TreeIndex tree;
};

Pipeline BuildPipeline(Graph graph, const PrecomputeOptions& options) {
  Pipeline p;
  Result<PrecomputedData> pre = PrecomputedData::Build(graph, options);
  EXPECT_TRUE(pre.ok()) << pre.status().ToString();
  p.pre = std::make_unique<PrecomputedData>(std::move(pre).value());
  Result<TreeIndex> tree = TreeIndex::Build(graph, *p.pre);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  p.tree = std::move(tree).value();
  p.graph = std::move(graph);
  return p;
}

void ExpectSameCommunities(const std::vector<CommunityResult>& got,
                           const std::vector<CommunityResult>& want,
                           const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].community.center, want[i].community.center) << label;
    EXPECT_EQ(got[i].community.vertices, want[i].community.vertices) << label;
    EXPECT_EQ(got[i].community.edges, want[i].community.edges) << label;
    EXPECT_EQ(got[i].influence.vertices, want[i].influence.vertices) << label;
    EXPECT_EQ(got[i].influence.cpp, want[i].influence.cpp) << label;
    EXPECT_EQ(got[i].score(), want[i].score()) << label;
  }
}

/// Runs the same TopL + DTopL queries through the incrementally maintained
/// pipeline and through a full rebuild of `p.graph`, and demands identical
/// answers.
void ExpectMatchesFullRebuild(const Pipeline& p, const PrecomputeOptions& options,
                              const std::vector<Query>& queries,
                              const std::string& label) {
  Result<PrecomputedData> fresh_pre = PrecomputedData::Build(p.graph, options);
  ASSERT_TRUE(fresh_pre.ok()) << fresh_pre.status().ToString();
  Result<TreeIndex> fresh_tree = TreeIndex::Build(p.graph, *fresh_pre);
  ASSERT_TRUE(fresh_tree.ok()) << fresh_tree.status().ToString();

  TopLDetector incremental(p.graph, *p.pre, p.tree);
  TopLDetector rebuilt(p.graph, *fresh_pre, *fresh_tree);
  DTopLDetector incremental_d(p.graph, *p.pre, p.tree);
  DTopLDetector rebuilt_d(p.graph, *fresh_pre, *fresh_tree);

  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const std::string where = label + " query#" + std::to_string(qi);
    Result<TopLResult> got = incremental.Search(queries[qi]);
    Result<TopLResult> want = rebuilt.Search(queries[qi]);
    ASSERT_TRUE(got.ok()) << where << ": " << got.status().ToString();
    ASSERT_TRUE(want.ok()) << where << ": " << want.status().ToString();
    EXPECT_FALSE(got->truncated) << where;
    EXPECT_EQ(got->score_upper_bound, want->score_upper_bound) << where;
    ExpectSameCommunities(got->communities, want->communities, where);

    Result<DTopLResult> got_d = incremental_d.Search(queries[qi]);
    Result<DTopLResult> want_d = rebuilt_d.Search(queries[qi]);
    ASSERT_TRUE(got_d.ok()) << where << ": " << got_d.status().ToString();
    ASSERT_TRUE(want_d.ok()) << where << ": " << want_d.status().ToString();
    EXPECT_EQ(got_d->diversity_score, want_d->diversity_score) << where;
    ExpectSameCommunities(got_d->communities, want_d->communities,
                          where + " (dtopl)");
  }
}

/// Sweep update streams draw from the library's shared generator with the
/// test graphs' small keyword domain.
GraphDelta MakeSweepDelta(const Graph& g, Rng& rng, int ops) {
  RandomDeltaOptions options;
  options.num_ops = ops;
  options.keyword_domain = 12;
  return MakeRandomDelta(g, rng, options);
}

/// Query keywords drawn from keywords actually present in the graph.
std::vector<KeywordId> SampleQueryKeywords(const Graph& g, Rng& rng,
                                           std::uint32_t count) {
  std::vector<KeywordId> out;
  for (int attempt = 0; out.size() < count && attempt < 1000; ++attempt) {
    const VertexId v = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    const auto kws = g.Keywords(v);
    if (kws.empty()) continue;
    const KeywordId w = kws[rng.NextBounded(kws.size())];
    if (std::find(out.begin(), out.end(), w) == out.end()) out.push_back(w);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// The acceptance sweep: 20 random graphs, each advanced through 3 random
// delta batches; after every batch the incrementally maintained index must
// answer exactly like a from-scratch rebuild.
TEST(DynamicUpdateSweepTest, IncrementalEqualsRebuildOnRandomStreams) {
  const PrecomputeOptions options = SweepPrecomputeOptions();
  for (std::uint64_t graph_seed = 0; graph_seed < 20; ++graph_seed) {
    ErdosRenyiOptions gen;
    gen.num_vertices = 48 + 4 * graph_seed;  // 48..124 vertices
    gen.edge_prob = 0.08;
    gen.seed = 1000 + graph_seed;
    gen.keywords.domain_size = 12;
    gen.keywords.keywords_per_vertex = 3;
    Result<Graph> graph = MakeErdosRenyi(gen);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();

    Rng rng(7000 + graph_seed);
    Pipeline pipeline = BuildPipeline(std::move(graph).value(), options);

    for (int batch = 0; batch < 3; ++batch) {
      const GraphDelta delta = MakeSweepDelta(pipeline.graph, rng, 6);
      Result<UpdatedIndex> updated = IndexUpdater::Apply(
          pipeline.graph, *pipeline.pre, pipeline.tree, delta);
      ASSERT_TRUE(updated.ok()) << updated.status().ToString();
      EXPECT_EQ(updated->scope.num_vertices, pipeline.graph.NumVertices());
      EXPECT_LE(updated->scope.dirty_centers, updated->scope.num_vertices);
      pipeline.graph = std::move(updated->graph);
      pipeline.pre = std::move(updated->pre);
      pipeline.tree = std::move(updated->tree);

      std::vector<Query> queries;
      for (int qi = 0; qi < 3; ++qi) {
        Query q;
        q.keywords = SampleQueryKeywords(pipeline.graph, rng, 2);
        if (q.keywords.empty()) continue;
        q.k = 3 + static_cast<std::uint32_t>(rng.NextBounded(2));
        q.radius = 1 + static_cast<std::uint32_t>(rng.NextBounded(2));
        q.theta = 0.2;
        q.top_l = 3;
        queries.push_back(std::move(q));
      }
      ExpectMatchesFullRebuild(pipeline, options, queries,
                               "graph#" + std::to_string(graph_seed) +
                                   " batch#" + std::to_string(batch));
    }
  }
}

// Deleting the bridge between two triangles must disconnect them in every
// derived structure; the incrementally patched index answers exactly like a
// rebuild on the now-disconnected graph.
TEST(DynamicUpdateTest, DeleteDisconnectsComponent) {
  const PrecomputeOptions options = SweepPrecomputeOptions();
  Pipeline pipeline = BuildPipeline(
      MakeKeywordGraph(7,
                       {{0, 1}, {1, 2}, {0, 2},  // triangle A
                        {3, 4}, {4, 5}, {3, 5},  // triangle B
                        {2, 3},                  // the bridge
                        {5, 6}},                 // pendant
                       {{0}, {0}, {0}, {0}, {0}, {0}, {0}}, 0.6),
      options);

  GraphDelta delta;
  delta.DeleteEdge(2, 3);
  Result<UpdatedIndex> updated =
      IndexUpdater::Apply(pipeline.graph, *pipeline.pre, pipeline.tree, delta);
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  EXPECT_FALSE(updated->graph.HasEdge(2, 3));
  pipeline.graph = std::move(updated->graph);
  pipeline.pre = std::move(updated->pre);
  pipeline.tree = std::move(updated->tree);

  Query q;
  q.keywords = {0};
  q.k = 3;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 5;
  ExpectMatchesFullRebuild(pipeline, options, {q}, "disconnect");

  // Sanity: no answer community spans both triangles any more.
  TopLDetector detector(pipeline.graph, *pipeline.pre, pipeline.tree);
  Result<TopLResult> answer = detector.Search(q);
  ASSERT_TRUE(answer.ok());
  ASSERT_FALSE(answer->communities.empty());
  for (const CommunityResult& c : answer->communities) {
    bool has_a = false;
    bool has_b = false;
    for (VertexId v : c.community.vertices) {
      has_a |= v <= 2;
      has_b |= v >= 3 && v <= 5;
    }
    EXPECT_FALSE(has_a && has_b) << "community spans the deleted bridge";
  }
}

// Shrinking keyword sets below the query keywords: once no vertex carries
// the query keyword, the maintained index (whose signatures must have been
// refreshed) returns the same empty answer a rebuild does.
TEST(DynamicUpdateTest, KeywordShrinkBelowQueryKeywords) {
  const PrecomputeOptions options = SweepPrecomputeOptions();
  Pipeline pipeline = BuildPipeline(
      MakeKeywordGraph(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}},
                       {{0, 1}, {0, 1}, {0, 1}, {0, 1}}, 0.6),
      options);

  Query q;
  q.keywords = {1};
  q.k = 3;
  q.radius = 1;
  q.theta = 0.2;
  q.top_l = 3;
  {
    TopLDetector detector(pipeline.graph, *pipeline.pre, pipeline.tree);
    Result<TopLResult> before = detector.Search(q);
    ASSERT_TRUE(before.ok());
    EXPECT_FALSE(before->communities.empty());
  }

  GraphDelta delta;
  for (VertexId v = 0; v < 4; ++v) delta.RemoveKeyword(v, 1);
  Result<UpdatedIndex> updated =
      IndexUpdater::Apply(pipeline.graph, *pipeline.pre, pipeline.tree, delta);
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  pipeline.graph = std::move(updated->graph);
  pipeline.pre = std::move(updated->pre);
  pipeline.tree = std::move(updated->tree);

  ExpectMatchesFullRebuild(pipeline, options, {q}, "keyword-shrink");
  TopLDetector detector(pipeline.graph, *pipeline.pre, pipeline.tree);
  Result<TopLResult> after = detector.Search(q);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->communities.empty());
}

// A keyword-only change dirties exactly the r_max-ball around the touched
// vertex: on a path graph that is 3 of 8 vertices, and the scope report says
// so.
TEST(DynamicUpdateTest, RebuildScopeIsLocalForKeywordChange) {
  const PrecomputeOptions options = SweepPrecomputeOptions();
  Pipeline pipeline = BuildPipeline(
      MakeKeywordGraph(8,
                       {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}},
                       {{0}, {0}, {0}, {0}, {0}, {0}, {0}, {0}}, 0.5),
      options);

  GraphDelta delta;
  delta.AddKeyword(0, 3);
  const std::vector<VertexId> dirty = IndexUpdater::DirtyCenters(
      pipeline.graph, pipeline.graph, delta, options.r_max,
      /*theta_min=*/0.1);
  EXPECT_EQ(dirty, (std::vector<VertexId>{0, 1, 2}));

  Result<UpdatedIndex> updated =
      IndexUpdater::Apply(pipeline.graph, *pipeline.pre, pipeline.tree, delta);
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  EXPECT_EQ(updated->scope.dirty_centers, 3u);
  EXPECT_EQ(updated->scope.touched_vertices, 1u);
  EXPECT_GT(updated->scope.precompute_avoided(), 0.6);
  EXPECT_GT(updated->scope.tree_nodes_patched, 0u);
  EXPECT_FALSE(updated->scope.ToString().empty());
}

// Engine-level MVCC: in-flight/pinned snapshots keep answering with the old
// state, new queries see the new state, counters track the update, and a
// failed update leaves the engine serving untouched.
TEST(DynamicUpdateTest, EngineSnapshotIsolationAndStats) {
  EngineOptions engine_options;
  engine_options.precompute = SweepPrecomputeOptions();
  engine_options.num_threads = 2;

  ErdosRenyiOptions gen;
  gen.num_vertices = 80;
  gen.edge_prob = 0.08;
  gen.seed = 11;
  gen.keywords.domain_size = 12;
  Result<Graph> graph = MakeErdosRenyi(gen);
  ASSERT_TRUE(graph.ok());
  const Graph base = CopyGraph(*graph);

  Result<std::unique_ptr<Engine>> engine =
      Engine::FromGraph(std::move(graph).value(), engine_options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  Rng rng(99);
  Query q;
  q.keywords = SampleQueryKeywords(base, rng, 2);
  ASSERT_FALSE(q.keywords.empty());
  q.k = 3;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 3;

  Result<TopLResult> before = (*engine)->Search(q);
  ASSERT_TRUE(before.ok());
  std::shared_ptr<const EngineSnapshot> pinned = (*engine)->snapshot();
  EXPECT_EQ(pinned->epoch, 0u);

  const GraphDelta delta = MakeSweepDelta(base, rng, 8);
  Result<RebuildScope> scope = (*engine)->ApplyUpdate(delta);
  ASSERT_TRUE(scope.ok()) << scope.status().ToString();
  EXPECT_GT(scope->dirty_centers, 0u);

  // New queries run on the new snapshot and match a from-scratch engine.
  Result<Graph> mutated = ApplyDelta(base, delta);
  ASSERT_TRUE(mutated.ok());
  Result<std::unique_ptr<Engine>> rebuilt =
      Engine::FromGraph(std::move(mutated).value(), engine_options);
  ASSERT_TRUE(rebuilt.ok());
  Result<TopLResult> after = (*engine)->Search(q);
  Result<TopLResult> expected = (*rebuilt)->Search(q);
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(expected.ok());
  ExpectSameCommunities(after->communities, expected->communities,
                        "engine-after-update");

  // The pinned snapshot still answers exactly like before the update.
  {
    TopLDetector old_detector(*pinned->graph, *pinned->pre, *pinned->tree);
    Result<TopLResult> pinned_answer = old_detector.Search(q);
    ASSERT_TRUE(pinned_answer.ok());
    ExpectSameCommunities(pinned_answer->communities, before->communities,
                          "pinned-snapshot");
  }

  EngineStats stats = (*engine)->Stats();
  EXPECT_EQ(stats.updates_applied, 1u);
  EXPECT_EQ(stats.snapshot_epoch, 1u);
  EXPECT_EQ(stats.update_dirty_centers, scope->dirty_centers);
  EXPECT_GE(stats.live_snapshots, 1u);
  // Counters survive context retirement across the swap.
  EXPECT_EQ(stats.topl_queries, 2u);

  // A bad delta fails without touching the serving state.
  GraphDelta bad;
  bad.DeleteEdge(0, 0);
  Result<RebuildScope> failed = (*engine)->ApplyUpdate(bad);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ((*engine)->Stats().snapshot_epoch, 1u);
  EXPECT_EQ((*engine)->Stats().updates_applied, 1u);
  Result<TopLResult> still = (*engine)->Search(q);
  ASSERT_TRUE(still.ok());
  ExpectSameCommunities(still->communities, expected->communities,
                        "engine-after-failed-update");
}

// Updates against a mmap-served artifact: the mapped snapshot must be
// materialized (never written through) and the patched state must match a
// rebuild; the artifact file on disk stays byte-identical.
TEST(DynamicUpdateTest, EngineUpdateOnMappedArtifact) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("topl_dynupd_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string graph_path = (dir / "graph.bin").string();
  const std::string index_path = (dir / "index.idx").string();

  ErdosRenyiOptions gen;
  gen.num_vertices = 60;
  gen.edge_prob = 0.09;
  gen.seed = 21;
  gen.keywords.domain_size = 12;
  Result<Graph> graph = MakeErdosRenyi(gen);
  ASSERT_TRUE(graph.ok());
  const Graph base = CopyGraph(*graph);
  ASSERT_TRUE(WriteGraphBinary(*graph, graph_path).ok());

  EngineOptions options;
  options.graph_path = graph_path;
  options.index_path = index_path;
  options.precompute = SweepPrecomputeOptions();
  options.num_threads = 2;
  options.save_built_index = true;
  {
    // First open builds + persists the artifact.
    Result<std::unique_ptr<Engine>> build = Engine::Open(options);
    ASSERT_TRUE(build.ok()) << build.status().ToString();
  }
  Result<std::unique_ptr<Engine>> engine = Engine::Open(options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_EQ((*engine)->index_source(), Engine::IndexSource::kMappedArtifact);
  const auto artifact_bytes_before = fs::file_size(index_path);

  Rng rng(5);
  const GraphDelta delta = MakeSweepDelta(base, rng, 6);
  Result<RebuildScope> scope = (*engine)->ApplyUpdate(delta);
  ASSERT_TRUE(scope.ok()) << scope.status().ToString();
  EXPECT_FALSE((*engine)->graph().IsMapped());

  Query q;
  q.keywords = SampleQueryKeywords(base, rng, 2);
  ASSERT_FALSE(q.keywords.empty());
  q.k = 3;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 3;

  Result<Graph> mutated = ApplyDelta(base, delta);
  ASSERT_TRUE(mutated.ok());
  EngineOptions rebuild_options;
  rebuild_options.precompute = options.precompute;
  rebuild_options.num_threads = 2;
  Result<std::unique_ptr<Engine>> rebuilt =
      Engine::FromGraph(std::move(mutated).value(), rebuild_options);
  ASSERT_TRUE(rebuilt.ok());
  Result<TopLResult> got = (*engine)->Search(q);
  Result<TopLResult> want = (*rebuilt)->Search(q);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(want.ok());
  ExpectSameCommunities(got->communities, want->communities, "mmap-update");

  EXPECT_EQ(fs::file_size(index_path), artifact_bytes_before);
  fs::remove_all(dir);
}

// The TSan target: queries streaming through the engine while updates swap
// snapshots underneath them. Every query must succeed against whichever
// epoch it pinned; afterwards the stats account for every query served.
TEST(DynamicUpdateTest, ConcurrentApplyUpdateAndSearch) {
  EngineOptions engine_options;
  engine_options.precompute = SweepPrecomputeOptions();
  engine_options.num_threads = 4;

  ErdosRenyiOptions gen;
  gen.num_vertices = 120;
  gen.edge_prob = 0.06;
  gen.seed = 31;
  gen.keywords.domain_size = 12;
  Result<Graph> graph = MakeErdosRenyi(gen);
  ASSERT_TRUE(graph.ok());
  const Graph base = CopyGraph(*graph);

  Result<std::unique_ptr<Engine>> engine =
      Engine::FromGraph(std::move(graph).value(), engine_options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  Rng rng(77);
  Query q;
  q.keywords = SampleQueryKeywords(base, rng, 2);
  ASSERT_FALSE(q.keywords.empty());
  q.k = 3;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 3;

  constexpr int kUpdates = 4;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&]() {
      while (!stop.load(std::memory_order_relaxed)) {
        Result<TopLResult> answer = (*engine)->Search(q);
        if (!answer.ok()) failures.fetch_add(1);
        served.fetch_add(1);
      }
    });
  }

  for (int u = 0; u < kUpdates; ++u) {
    // Deltas are generated against the engine's *current* snapshot — this
    // thread is the only writer, so the snapshot cannot change under it.
    std::shared_ptr<const EngineSnapshot> current = (*engine)->snapshot();
    Rng update_rng(500 + u);
    const GraphDelta delta = MakeSweepDelta(*current->graph, update_rng, 4);
    Result<RebuildScope> scope = (*engine)->ApplyUpdate(delta);
    ASSERT_TRUE(scope.ok()) << scope.status().ToString();
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0u);
  const EngineStats stats = (*engine)->Stats();
  EXPECT_EQ(stats.updates_applied, kUpdates);
  EXPECT_EQ(stats.snapshot_epoch, kUpdates);
  // Every search is accounted for, whether its context was retired or not.
  EXPECT_EQ(stats.topl_queries, served.load());
  EXPECT_EQ(stats.live_snapshots, 1u);  // all readers joined; only current
}

}  // namespace
}  // namespace topl

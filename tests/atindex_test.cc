#include "baselines/atindex.h"

#include "core/brute_force.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace topl {
namespace {

using testing::Scores;

Graph Workload(std::uint64_t seed) {
  SmallWorldOptions gen;
  gen.num_vertices = 180;
  gen.seed = seed;
  gen.keywords.domain_size = 10;
  Result<Graph> g = MakeSmallWorld(gen);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

Query DefaultQuery() {
  Query q;
  q.keywords = {0, 1, 2, 3, 4};
  q.k = 3;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 5;
  return q;
}

TEST(ATIndexTest, MatchesBruteForce) {
  // The baseline is slower but must be equally correct: same score multiset
  // as the exhaustive reference.
  for (std::uint64_t seed : {71u, 72u, 73u}) {
    const Graph g = Workload(seed);
    const ATIndex index = ATIndex::Build(g);
    const Query q = DefaultQuery();
    Result<TopLResult> at = index.Search(q);
    ASSERT_TRUE(at.ok());
    Result<TopLResult> brute = BruteForceTopL(g, q);
    ASSERT_TRUE(brute.ok());
    const auto a = Scores(at->communities);
    const auto b = Scores(brute->communities);
    ASSERT_EQ(a.size(), b.size()) << "seed " << seed;
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
  }
}

TEST(ATIndexTest, TrussnessFilterIsSafeAndEffective) {
  const Graph g = Workload(74);
  const ATIndex index = ATIndex::Build(g);
  const Query q = DefaultQuery();
  Result<TopLResult> result = index.Search(q);
  ASSERT_TRUE(result.ok());
  // Filtering must skip some centers (support pruning) on this workload but
  // never a center that brute force turns into a community.
  EXPECT_GT(result->stats.pruned_support + result->stats.pruned_keyword, 0u);
  Result<TopLResult> brute = BruteForceTopL(g, q);
  ASSERT_TRUE(brute.ok());
  EXPECT_EQ(result->stats.communities_found, brute->stats.communities_found);
}

TEST(ATIndexTest, SamplingReducesWork) {
  const Graph g = Workload(75);
  const ATIndex index = ATIndex::Build(g);
  const Query q = DefaultQuery();
  ATIndex::SearchOptions full;
  ATIndex::SearchOptions sampled;
  sampled.center_sample_rate = 0.2;
  Result<TopLResult> r_full = index.Search(q, full);
  Result<TopLResult> r_sampled = index.Search(q, sampled);
  ASSERT_TRUE(r_full.ok());
  ASSERT_TRUE(r_sampled.ok());
  EXPECT_LT(r_sampled->stats.candidates_refined,
            r_full->stats.candidates_refined);
  EXPECT_GT(r_sampled->stats.candidates_refined, 0u);
}

TEST(ATIndexTest, RejectsBadSampleRate) {
  const Graph g = Workload(76);
  const ATIndex index = ATIndex::Build(g);
  ATIndex::SearchOptions opts;
  opts.center_sample_rate = 0.0;
  EXPECT_FALSE(index.Search(DefaultQuery(), opts).ok());
  opts.center_sample_rate = 1.5;
  EXPECT_FALSE(index.Search(DefaultQuery(), opts).ok());
}

TEST(ATIndexTest, ExposesTrussness) {
  const Graph g = Workload(77);
  const ATIndex index = ATIndex::Build(g);
  EXPECT_EQ(index.edge_trussness().size(), g.NumEdges());
  EXPECT_EQ(index.vertex_trussness().size(), g.NumVertices());
}

}  // namespace
}  // namespace topl

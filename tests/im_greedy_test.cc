#include "baselines/im_greedy.h"

#include <set>

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "influence/diversity.h"
#include "tests/test_util.h"

namespace topl {
namespace {

using testing::MakeGraph;

TEST(ImGreedyTest, RejectsBadOptions) {
  const Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  ImGreedyOptions options;
  options.budget = 0;
  EXPECT_FALSE(GreedyInfluenceMaximization(g, options).ok());
  options = ImGreedyOptions();
  options.theta = 1.0;
  EXPECT_FALSE(GreedyInfluenceMaximization(g, options).ok());
  options = ImGreedyOptions();
  options.candidates = {99};
  EXPECT_FALSE(GreedyInfluenceMaximization(g, options).ok());
}

TEST(ImGreedyTest, PicksTheObviousHub) {
  // Star with strong arcs from the hub: the hub is the best single seed.
  GraphBuilder b(6);
  for (VertexId leaf = 1; leaf < 6; ++leaf) b.AddEdge(0, leaf, 0.9);
  Result<Graph> g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  ImGreedyOptions options;
  options.budget = 1;
  options.theta = 0.1;
  Result<ImGreedyResult> result = GreedyInfluenceMaximization(*g, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->seeds.size(), 1u);
  EXPECT_EQ(result->seeds[0], 0u);
  EXPECT_NEAR(result->spread, 1.0 + 5 * 0.9, 1e-5);
}

TEST(ImGreedyTest, SecondSeedAvoidsRedundancy) {
  // Two far-apart stars: after taking one hub, the greedy must jump to the
  // other hub rather than a leaf of the first.
  GraphBuilder b(10);
  for (VertexId leaf = 1; leaf < 5; ++leaf) b.AddEdge(0, leaf, 0.9);
  for (VertexId leaf = 6; leaf < 10; ++leaf) b.AddEdge(5, leaf, 0.9);
  b.AddEdge(4, 6, 0.5);  // weak bridge keeps the graph connected
  Result<Graph> g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  ImGreedyOptions options;
  options.budget = 2;
  options.theta = 0.1;
  Result<ImGreedyResult> result = GreedyInfluenceMaximization(*g, options);
  ASSERT_TRUE(result.ok());
  const std::set<VertexId> seeds(result->seeds.begin(), result->seeds.end());
  EXPECT_TRUE(seeds.count(0) == 1 && seeds.count(5) == 1)
      << "seeds: " << result->seeds[0] << ", " << result->seeds[1];
}

TEST(ImGreedyTest, SpreadMatchesOracleRecomputation) {
  SmallWorldOptions gen;
  gen.num_vertices = 120;
  gen.seed = 5;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  ImGreedyOptions options;
  options.budget = 4;
  options.theta = 0.2;
  Result<ImGreedyResult> result = GreedyInfluenceMaximization(*g, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->seeds.size(), 4u);
  // Recompute the spread independently.
  PropagationEngine engine(*g);
  DiversityOracle oracle;
  for (VertexId s : result->seeds) {
    oracle.Add(engine.ComputeFromSource(s, options.theta));
  }
  EXPECT_NEAR(result->spread, oracle.TotalScore(), 1e-9);
}

TEST(ImGreedyTest, CandidateRestrictionHonored) {
  SmallWorldOptions gen;
  gen.num_vertices = 100;
  gen.seed = 6;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  ImGreedyOptions options;
  options.budget = 3;
  options.candidates = {10, 20, 30, 40};
  Result<ImGreedyResult> result = GreedyInfluenceMaximization(*g, options);
  ASSERT_TRUE(result.ok());
  for (VertexId s : result->seeds) {
    EXPECT_TRUE(s == 10 || s == 20 || s == 30 || s == 40);
  }
}

TEST(ImGreedyTest, BudgetBeyondGraphSize) {
  const Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  ImGreedyOptions options;
  options.budget = 10;
  Result<ImGreedyResult> result = GreedyInfluenceMaximization(g, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->seeds.size(), 3u);
}

TEST(ImGreedyTest, SpreadMonotoneInBudget) {
  SmallWorldOptions gen;
  gen.num_vertices = 150;
  gen.seed = 7;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  double prev = 0.0;
  for (std::uint32_t budget : {1u, 2u, 4u, 8u}) {
    ImGreedyOptions options;
    options.budget = budget;
    Result<ImGreedyResult> result = GreedyInfluenceMaximization(*g, options);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->spread + 1e-12, prev);
    prev = result->spread;
  }
}

}  // namespace
}  // namespace topl

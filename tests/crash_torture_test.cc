// Crash-torture sweep over the fault-injection registry: for every
// registered failure point, a forked child runs the full durable-update
// path (open with journal, apply deltas, rewrite an artifact) and is killed
// the moment it executes that point. The parent then recovers from whatever
// the child left on disk and asserts the recovered engine answers a query
// battery byte-identically to a live engine that applied the same durable
// prefix of the delta stream — i.e. a crash anywhere loses nothing
// acknowledged and invents nothing unacknowledged.

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "graph/generators.h"
#include "graph/graph_delta.h"
#include "gtest/gtest.h"
#include "storage/artifact.h"
#include "tests/test_util.h"

namespace topl {
namespace {

class CrashTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("topl_torture_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    fault::Disarm();
  }
  void TearDown() override {
    fault::Disarm();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  static Graph MakeTestGraph() {
    SmallWorldOptions gen;
    gen.num_vertices = 100;
    gen.seed = 31;
    gen.keywords.domain_size = 10;
    Result<Graph> g = MakeSmallWorld(gen);
    EXPECT_TRUE(g.ok()) << g.status().ToString();
    return std::move(g).value();
  }

  static std::vector<Query> QueryBattery() {
    std::vector<Query> queries;
    for (std::uint32_t i = 0; i < 4; ++i) {
      Query q;
      q.keywords = {static_cast<KeywordId>(i % 10),
                    static_cast<KeywordId>((i + 3) % 10),
                    static_cast<KeywordId>((i + 6) % 10)};
      std::sort(q.keywords.begin(), q.keywords.end());
      q.k = 3;
      q.radius = 1 + i % 2;
      q.theta = 0.2;
      q.top_l = 4;
      queries.push_back(std::move(q));
    }
    return queries;
  }

  static void ExpectSameAnswers(Engine& actual, Engine& expected) {
    for (const Query& q : QueryBattery()) {
      Result<TopLResult> a = actual.Search(q);
      Result<TopLResult> e = expected.Search(q);
      ASSERT_EQ(a.ok(), e.ok()) << a.status().ToString();
      if (!a.ok()) continue;
      ASSERT_EQ(a->communities.size(), e->communities.size());
      for (std::size_t i = 0; i < a->communities.size(); ++i) {
        EXPECT_EQ(a->communities[i].community.center,
                  e->communities[i].community.center);
        EXPECT_EQ(a->communities[i].community.vertices,
                  e->communities[i].community.vertices);
        EXPECT_EQ(a->communities[i].score(), e->communities[i].score());
      }
    }
  }

  std::filesystem::path dir_;
};

/// Deterministic, sequentially-valid deltas for `g`'s lineage.
std::vector<GraphDelta> MakeDeltaStream(const Graph& g, std::size_t count) {
  std::vector<GraphDelta> deltas;
  std::unique_ptr<Graph> evolved;
  const Graph* current = &g;
  Rng rng(777);
  while (deltas.size() < count) {
    GraphDelta d = MakeRandomDelta(*current, rng);
    if (d.empty()) continue;
    Result<Graph> next = ApplyDelta(*current, d);
    EXPECT_TRUE(next.ok()) << next.status().ToString();
    if (!next.ok()) break;
    evolved = std::make_unique<Graph>(std::move(*next));
    current = evolved.get();
    deltas.push_back(std::move(d));
  }
  return deltas;
}

// Exit codes of the forked child. 137 is fault::Check's kCrash exit; the
// child never returns — gtest machinery must not run in it.
constexpr int kChildDone = 0;
constexpr int kChildRealError = 3;
constexpr int kChildCrashed = 137;

/// The durable-update path under torture: open the artifact with a journal,
/// apply every delta, rewrite a (side) artifact. The armed point kills the
/// process partway through; completing the whole path exits 0.
[[noreturn]] void ChildUpdatePath(const std::string& point,
                                  const std::string& artifact,
                                  const std::string& journal,
                                  const std::string& side_artifact,
                                  const std::vector<GraphDelta>& deltas) {
  fault::Arm(point, fault::Action::kCrash);
  EngineOptions options;
  options.index_path = artifact;
  options.journal_path = journal;
  options.num_threads = 1;
  Result<std::unique_ptr<Engine>> engine = Engine::Open(options);
  if (!engine.ok()) ::_exit(kChildRealError);
  for (const GraphDelta& delta : deltas) {
    if (!(*engine)->ApplyUpdate(delta).ok()) ::_exit(kChildRealError);
  }
  const std::shared_ptr<const EngineSnapshot> snap = (*engine)->snapshot();
  const Status written = ArtifactWriter::Write(*snap->graph, *snap->pre,
                                               *snap->tree, side_artifact);
  ::_exit(written.ok() ? kChildDone : kChildRealError);
}

TEST_F(CrashTortureTest, EveryCrashPointRecoversWithoutDivergence) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";

  const Graph graph = MakeTestGraph();
  testing::BuiltIndex built = testing::BuildIndexFor(graph);
  const std::string base = Path("base.idx");
  ASSERT_TRUE(
      ArtifactWriter::Write(graph, built.pre(), built.tree, base).ok());
  const std::vector<GraphDelta> deltas = MakeDeltaStream(graph, 4);
  ASSERT_EQ(deltas.size(), 4u);

  std::vector<std::string> crashed;
  for (const std::string& point : fault::AllPoints()) {
    SCOPED_TRACE(point);
    std::string tag = point;
    std::replace(tag.begin(), tag.end(), '.', '_');
    const std::filesystem::path sub = dir_ / tag;
    std::filesystem::create_directories(sub);
    const std::string artifact = (sub / "index.idx").string();
    std::filesystem::copy_file(base, artifact);
    const std::string journal = (sub / "wal.jrn").string();
    const std::string side = (sub / "side.idx").string();

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) ChildUpdatePath(point, artifact, journal, side, deltas);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus))
        << "child killed by signal " << WTERMSIG(wstatus);
    const int code = WEXITSTATUS(wstatus);
    // A point off this path is legal (the child completes); anything other
    // than clean completion or the injected kill is a real bug.
    ASSERT_TRUE(code == kChildDone || code == kChildCrashed)
        << "child exit code " << code;
    if (code == kChildCrashed) crashed.push_back(point);

    // Recovery must succeed no matter where the child died, and must land on
    // a durable prefix of the delta stream.
    EngineOptions options;
    options.index_path = artifact;
    options.journal_path = journal;
    options.num_threads = 1;
    RecoveryInfo info;
    Result<std::unique_ptr<Engine>> recovered = Engine::Recover(options, &info);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    ASSERT_LE(info.records_replayed, deltas.size());

    // Reference: a live engine over the same base artifact replaying that
    // prefix through the ordinary update path (read-only mmap; sharing the
    // file with the recovered engine is fine).
    EngineOptions live_options;
    live_options.index_path = artifact;
    live_options.num_threads = 1;
    Result<std::unique_ptr<Engine>> live = Engine::Open(live_options);
    ASSERT_TRUE(live.ok()) << live.status().ToString();
    for (std::uint64_t i = 0; i < info.records_replayed; ++i) {
      ASSERT_TRUE((*live)->ApplyUpdate(deltas[i]).ok());
    }
    ExpectSameAnswers(**recovered, **live);
  }

  // The child's path must actually traverse the registry: every durability
  // point on the journal-append + artifact-rewrite flow killed its child.
  for (const char* must :
       {"journal.open", "journal.append", "journal.fsync", "atomic.open",
        "atomic.write", "atomic.fsync", "atomic.rename", "artifact.write",
        "mapped_file.open"}) {
    EXPECT_NE(std::find(crashed.begin(), crashed.end(), must), crashed.end())
        << "point never fired: " << must;
  }
}

TEST_F(CrashTortureTest, TornAppendRecoversDurablePrefix) {
  if (!fault::Enabled()) GTEST_SKIP() << "fault injection compiled out";

  const Graph graph = MakeTestGraph();
  testing::BuiltIndex built = testing::BuildIndexFor(graph);
  const std::string artifact = Path("torn.idx");
  ASSERT_TRUE(
      ArtifactWriter::Write(graph, built.pre(), built.tree, artifact).ok());
  const std::vector<GraphDelta> deltas = MakeDeltaStream(graph, 3);
  ASSERT_EQ(deltas.size(), 3u);

  EngineOptions options;
  options.index_path = artifact;
  options.journal_path = Path("torn.jrn");
  options.num_threads = 1;
  {
    Result<std::unique_ptr<Engine>> live = Engine::Open(options);
    ASSERT_TRUE(live.ok()) << live.status().ToString();
    // The third append tears mid-record: a prefix of the record reaches the
    // disk, the update is NOT acknowledged, and the engine state stays at
    // two deltas (durability strictly precedes visibility).
    fault::Arm("journal.append", fault::Action::kShortWrite,
               /*fire_on_hit=*/3);
    ASSERT_TRUE((*live)->ApplyUpdate(deltas[0]).ok());
    ASSERT_TRUE((*live)->ApplyUpdate(deltas[1]).ok());
    Result<RebuildScope> torn = (*live)->ApplyUpdate(deltas[2]);
    ASSERT_FALSE(torn.ok());
    EXPECT_TRUE(torn.status().IsIOError()) << torn.status().ToString();
    EXPECT_EQ((*live)->Stats().snapshot_epoch, 2u);
    fault::Disarm();
  }

  RecoveryInfo info;
  Result<std::unique_ptr<Engine>> recovered = Engine::Recover(options, &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(info.records_replayed, 2u);
  EXPECT_GT(info.torn_bytes_discarded, 0u);

  EngineOptions live_options;
  live_options.index_path = artifact;
  live_options.num_threads = 1;
  Result<std::unique_ptr<Engine>> reference = Engine::Open(live_options);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE((*reference)->ApplyUpdate(deltas[0]).ok());
  ASSERT_TRUE((*reference)->ApplyUpdate(deltas[1]).ok());
  ExpectSameAnswers(**recovered, **reference);
}

}  // namespace
}  // namespace topl

// End-to-end pipeline tests: generate/persist a graph, build + persist the
// index, and answer TopL-ICDE / DTopL-ICDE queries across the full stack —
// exactly the flow a library user runs (README quickstart).

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "topl.h"

namespace topl {
namespace {

using testing::Scores;
using testing::VerifySeedCommunity;

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("topl_integration_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
  std::vector<std::vector<double>> scores_;
  std::vector<std::vector<VertexId>> centers_;
};

TEST_F(IntegrationTest, FullPipelineOverPersistedArtifacts) {
  // 1. Generate a synthetic social network and persist it.
  SmallWorldOptions gen;
  gen.num_vertices = 300;
  gen.seed = 2024;
  gen.keywords.domain_size = 10;
  Result<Graph> generated = MakeSmallWorld(gen);
  ASSERT_TRUE(generated.ok());
  ASSERT_TRUE(WriteGraphBinary(*generated, Path("graph.bin")).ok());

  // 2. Reload it (as a separate session would).
  Result<Graph> graph = ReadGraphBinary(Path("graph.bin"));
  ASSERT_TRUE(graph.ok());

  // 3. Offline phase: precompute + index + persist.
  PrecomputeOptions pre_opts;
  pre_opts.num_threads = 2;
  Result<PrecomputedData> pre = PrecomputedData::Build(*graph, pre_opts);
  ASSERT_TRUE(pre.ok());
  Result<TreeIndex> tree = TreeIndex::Build(*graph, *pre);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(IndexCodec::Write(*pre, *tree, Path("index.bin")).ok());

  // 4. Reload the index and query.
  Result<IndexCodec::LoadedIndex> loaded =
      IndexCodec::Read(Path("index.bin"), *graph);
  ASSERT_TRUE(loaded.ok());
  TopLDetector detector(*graph, *loaded->data, loaded->tree);
  Query q;
  q.keywords = {0, 1, 2, 3, 4};
  q.k = 3;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 5;
  Result<TopLResult> answer = detector.Search(q);
  ASSERT_TRUE(answer.ok());
  ASSERT_FALSE(answer->communities.empty());
  for (const CommunityResult& c : answer->communities) {
    EXPECT_TRUE(VerifySeedCommunity(*graph, q, c.community));
    EXPECT_GT(c.score(), 0.0);
  }

  // 5. Cross-check against the exhaustive reference.
  Result<TopLResult> brute = BruteForceTopL(*graph, q);
  ASSERT_TRUE(brute.ok());
  const auto a = Scores(answer->communities);
  const auto b = Scores(brute->communities);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-9);

  // 6. DTopL on the same index.
  DTopLDetector dtopl(*graph, *loaded->data, loaded->tree);
  DTopLOptions dopts;
  dopts.n_factor = 3;
  Result<DTopLResult> diversified = dtopl.Search(q, dopts);
  ASSERT_TRUE(diversified.ok());
  EXPECT_LE(diversified->communities.size(), q.top_l);
  EXPECT_GT(diversified->diversity_score, 0.0);
}

TEST_F(IntegrationTest, SnapPipelineWithDictionary) {
  // SNAP ingestion with human-readable keywords resolved via the dictionary,
  // mirroring a user bringing their own labeled data.
  {
    std::ofstream out(Path("edges.txt"));
    out << "# toy co-purchase network\n";
    // Two K4s sharing a bridge.
    out << "100 101\n100 102\n100 103\n101 102\n101 103\n102 103\n";
    out << "200 201\n200 202\n200 203\n201 202\n201 203\n202 203\n";
    out << "103 200\n";
  }
  EdgeListLoadOptions load;
  load.assign_attributes = true;
  load.keywords.keywords_per_vertex = 2;
  load.keywords.domain_size = 4;
  Result<Graph> graph = LoadSnapEdgeList(Path("edges.txt"), load);
  ASSERT_TRUE(graph.ok());
  ASSERT_EQ(graph->NumVertices(), 8u);

  KeywordDictionary dict;
  // Ids 0..3 exist in the domain; give them names for the query surface.
  const std::vector<KeywordId> query_ids =
      dict.InternAll({"movies", "books", "sports", "travel"});
  ASSERT_EQ(query_ids.size(), 4u);

  PrecomputeOptions pre_opts;
  pre_opts.num_threads = 1;
  Result<PrecomputedData> pre = PrecomputedData::Build(*graph, pre_opts);
  ASSERT_TRUE(pre.ok());
  Result<TreeIndex> tree = TreeIndex::Build(*graph, *pre);
  ASSERT_TRUE(tree.ok());
  TopLDetector detector(*graph, *pre, *tree);
  Query q;
  q.keywords = query_ids;  // all four: every vertex qualifies
  q.k = 4;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 2;
  Result<TopLResult> answer = detector.Search(q);
  ASSERT_TRUE(answer.ok());
  // Each K4 yields a 4-truss community; the bridge edge cannot.
  ASSERT_FALSE(answer->communities.empty());
  for (const CommunityResult& c : answer->communities) {
    EXPECT_EQ(c.community.vertices.size(), 4u);
  }
}

TEST_F(IntegrationTest, DeterministicEndToEnd) {
  // The same seed must reproduce identical answers across full rebuilds —
  // the reproducibility claim of the benchmark harness.
  auto run_once = [this](const std::string& tag) {
    SmallWorldOptions gen;
    gen.num_vertices = 150;
    gen.seed = 7;
    gen.keywords.domain_size = 8;
    Result<Graph> g = MakeSmallWorld(gen);
    EXPECT_TRUE(g.ok());
    ASSERT_TRUE(WriteGraphBinary(*g, Path("graph_" + tag + ".bin")).ok());
    PrecomputeOptions pre_opts;
    pre_opts.num_threads = 4;  // parallelism must not break determinism
    Result<PrecomputedData> pre = PrecomputedData::Build(*g, pre_opts);
    ASSERT_TRUE(pre.ok());
    Result<TreeIndex> tree = TreeIndex::Build(*g, *pre);
    ASSERT_TRUE(tree.ok());
    TopLDetector detector(*g, *pre, *tree);
    Query q;
    q.keywords = {0, 1, 2};
    q.k = 3;
    q.radius = 2;
    q.theta = 0.2;
    q.top_l = 5;
    Result<TopLResult> answer = detector.Search(q);
    ASSERT_TRUE(answer.ok());
    std::vector<VertexId> centers;
    for (const CommunityResult& c : answer->communities) {
      centers.push_back(c.community.center);
    }
    scores_.push_back(Scores(answer->communities));
    centers_.push_back(centers);
  };
  run_once("a");
  run_once("b");
  ASSERT_EQ(scores_.size(), 2u);
  EXPECT_EQ(scores_[0], scores_[1]);
  EXPECT_EQ(centers_[0], centers_[1]);
}

}  // namespace
}  // namespace topl

#include "loadgen/recorder.h"

#include <array>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/latency_histogram.h"
#include "gtest/gtest.h"
#include "loadgen/report.h"

namespace topl {
namespace loadgen {
namespace {

TEST(LatencyHistogramTest, BucketIndexBoundaries) {
  EXPECT_EQ(LatencyBucketIndex(0), 0u);
  EXPECT_EQ(LatencyBucketIndex(1), 1u);
  EXPECT_EQ(LatencyBucketIndex(2), 2u);
  EXPECT_EQ(LatencyBucketIndex(3), 2u);   // [2, 4)
  EXPECT_EQ(LatencyBucketIndex(4), 3u);   // [4, 8)
  EXPECT_EQ(LatencyBucketIndex(511), 9u);
  EXPECT_EQ(LatencyBucketIndex(512), 10u);   // [512, 1024)
  EXPECT_EQ(LatencyBucketIndex(1000), 10u);  // 1ms lands in [512, 1024)µs
  EXPECT_EQ(LatencyBucketIndex(1024), 11u);
  // Saturates at the last bucket instead of overflowing.
  EXPECT_EQ(LatencyBucketIndex(~std::uint64_t{0}),
            kLatencyHistogramBuckets - 1);
}

TEST(LatencyHistogramTest, GeometricMidpointEstimate) {
  // Bucket [512, 1024)µs: geometric midpoint is sqrt(512 * 1024) =
  // 512*sqrt(2) ≈ 724µs. The old arithmetic midpoint (768µs) overestimated
  // typical (log-uniform-ish) latency mass; the header now promises within
  // sqrt(2) of the true value.
  EXPECT_NEAR(LatencyBucketSeconds(10), 724.08e-6, 0.1e-6);
  EXPECT_DOUBLE_EQ(LatencyBucketSeconds(0), 0.0);
  EXPECT_NEAR(LatencyBucketSeconds(1), std::sqrt(2.0) * 1e-6, 1e-12);

  LatencyHistogram h;
  h.AddMicros(1000);
  EXPECT_NEAR(h.PercentileSeconds(0.5), 724.08e-6, 0.1e-6);
}

TEST(LatencyHistogramTest, PercentilesAreOrderedAndCappedByMax) {
  LatencyHistogram h;
  // 1000 samples at ~1ms, 10 at ~16ms, 1 at ~1s.
  for (int i = 0; i < 1000; ++i) h.AddMicros(1000);
  for (int i = 0; i < 10; ++i) h.AddMicros(16000);
  h.AddMicros(1000000);

  const double p50 = h.PercentileSeconds(0.50);
  const double p99 = h.PercentileSeconds(0.99);
  const double p999 = h.PercentileSeconds(0.999);
  const double max = h.MaxSeconds();
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  EXPECT_LE(p999, max);
  EXPECT_DOUBLE_EQ(max, 1.0);
  // p50 in the 1ms bucket, p999 reaches the 16ms mass.
  EXPECT_NEAR(p50, 724.08e-6, 0.1e-6);
  EXPECT_GT(p999, 0.010);
  EXPECT_LT(p999, 0.033);
}

TEST(LatencyHistogramTest, MergeAddsCountsAndKeepsMax) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.AddMicros(100);
  a.AddMicros(200);
  b.AddMicros(50000);
  a.Merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.total_micros, 100u + 200u + 50000u);
  EXPECT_DOUBLE_EQ(a.MaxSeconds(), 0.05);
  EXPECT_NEAR(a.MeanSeconds(), (100 + 200 + 50000) / 3.0 * 1e-6, 1e-12);
}

TEST(LoadRecorderTest, RecordsPerKindCountsAndFlags) {
  LoadRecorder recorder;
  recorder.Record(OpKind::kTopL, 0.001, 0.001, /*ok=*/true, /*truncated=*/false);
  recorder.Record(OpKind::kTopL, 0.002, 0.001, /*ok=*/false, /*truncated=*/false);
  recorder.Record(OpKind::kUpdate, 0.1, 0.1, /*ok=*/true, /*truncated=*/false);
  recorder.Record(OpKind::kProgressive, 0.005, 0.004, /*ok=*/true,
                  /*truncated=*/true);

  EXPECT_EQ(recorder.TotalCount(), 4u);
  EXPECT_EQ(recorder.slot(OpKind::kTopL).latency.count, 2u);
  EXPECT_EQ(recorder.slot(OpKind::kTopL).failed, 1u);
  EXPECT_EQ(recorder.slot(OpKind::kProgressive).truncated, 1u);
  EXPECT_EQ(recorder.slot(OpKind::kDTopL).latency.count, 0u);
  // Reported vs service latency are tracked separately.
  EXPECT_GT(recorder.slot(OpKind::kTopL).latency.total_micros,
            recorder.slot(OpKind::kTopL).service.total_micros);
}

// Many threads, each writing its own recorder (the injector's ownership
// model), merged after join: totals must be exact, not approximate — there
// is no sampling and no lossy path. Run under TSan in CI.
TEST(LoadRecorderTest, ConcurrentRecordingMergesToExactCounts) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kOpsPerThread = 20000;
  std::vector<LoadRecorder> recorders(kThreads);

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        const OpKind kind = static_cast<OpKind>(i % kNumOpKinds);
        const bool ok = i % 7 != 0;
        const bool truncated = i % 11 == 0;
        recorders[t].Record(kind, 1e-6 * static_cast<double>(i % 5000),
                            0.5e-6 * static_cast<double>(i % 5000), ok,
                            truncated);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  LoadRecorder merged;
  for (const LoadRecorder& recorder : recorders) merged.Merge(recorder);

  EXPECT_EQ(merged.TotalCount(), kThreads * kOpsPerThread);
  std::uint64_t expected_failed = 0;
  std::uint64_t expected_truncated = 0;
  std::array<std::uint64_t, kNumOpKinds> expected_kind{};
  for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
    ++expected_kind[i % kNumOpKinds];
    if (i % 7 == 0) ++expected_failed;
    if (i % 11 == 0) ++expected_truncated;
  }
  std::uint64_t failed = 0;
  std::uint64_t truncated = 0;
  for (std::size_t k = 0; k < kNumOpKinds; ++k) {
    EXPECT_EQ(merged.per_kind[k].latency.count, kThreads * expected_kind[k])
        << OpKindName(static_cast<OpKind>(k));
    EXPECT_EQ(merged.per_kind[k].latency.count,
              merged.per_kind[k].service.count);
    failed += merged.per_kind[k].failed;
    truncated += merged.per_kind[k].truncated;
  }
  EXPECT_EQ(failed, kThreads * expected_failed);
  EXPECT_EQ(truncated, kThreads * expected_truncated);
}

TEST(LoadReportTest, BuildReportAggregatesAcrossRecorders) {
  std::vector<LoadRecorder> recorders(3);
  for (int i = 0; i < 100; ++i) {
    recorders[0].Record(OpKind::kTopL, 0.001, 0.001, true, false);
    recorders[1].Record(OpKind::kDTopL, 0.004, 0.003, true, false);
    recorders[2].Record(OpKind::kUpdate, 0.050, 0.050, true, false);
  }
  recorders[1].Record(OpKind::kTopL, 0.2, 0.2, /*ok=*/false, false);

  const LoadReport report =
      BuildReport(recorders, "mixed", /*open_loop=*/true,
                  /*target_qps=*/100.0, /*wall_seconds=*/3.0);
  EXPECT_EQ(report.ops_total, 301u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_NEAR(report.achieved_qps, 301.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(report.ops_per_s, report.achieved_qps);
  EXPECT_EQ(report.per_kind[0].count, 101u);
  EXPECT_EQ(report.per_kind[1].count, 100u);
  EXPECT_EQ(report.per_kind[3].count, 100u);
  EXPECT_EQ(report.overall.count, 301u);
  // Percentile ordering holds for every kind and overall.
  for (const OpKindSummary& s : report.per_kind) {
    EXPECT_LE(s.p50_ms, s.p99_ms);
    EXPECT_LE(s.p99_ms, s.p999_ms);
    EXPECT_LE(s.p999_ms, s.max_ms);
  }

  // JSON carries the per-kind blocks and the digest field.
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"benchmark\": \"serve\""), std::string::npos);
  EXPECT_NE(json.find("\"topl\""), std::string::npos);
  EXPECT_NE(json.find("\"ops_per_s\""), std::string::npos);
  EXPECT_NE(json.find("\"stream_digest\""), std::string::npos);
}

TEST(LoadReportTest, CheckSloFlagsBreaches) {
  std::vector<LoadRecorder> recorders(1);
  for (int i = 0; i < 1000; ++i) {
    recorders[0].Record(OpKind::kTopL, 0.002, 0.002, true, false);
  }
  const LoadReport report =
      BuildReport(recorders, "read_heavy", false, 0.0, 10.0);  // 100 ops/s

  SloThresholds ok;
  EXPECT_TRUE(report.CheckSlo(ok).empty());

  SloThresholds strict;
  strict.min_ops_per_s = 500.0;  // achieved 100
  strict.max_p99_ms = 0.5;       // p99 ~2.8ms
  EXPECT_EQ(report.CheckSlo(strict).size(), 2u);

  // Failed operations breach even with thresholds disabled.
  recorders[0].Record(OpKind::kUpdate, 0.001, 0.001, /*ok=*/false, false);
  const LoadReport failed_report =
      BuildReport(recorders, "read_heavy", false, 0.0, 10.0);
  EXPECT_EQ(failed_report.CheckSlo(ok).size(), 1u);
}

}  // namespace
}  // namespace loadgen
}  // namespace topl

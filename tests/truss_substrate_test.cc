// Equivalence sweeps for the triangle substrate (truss/local_truss.h): the
// incremental path must be byte-identical to the from-scratch reference at
// every layer it replaced — raw supports under arbitrary kill streams, peel
// fixpoints, seed-community extraction, full TopL/DTopL answers, and the
// offline precompute + incremental index updater built on top of it.

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace topl {
namespace {

using ::topl::testing::BuildIndexFor;
using ::topl::testing::VerifySeedCommunity;

constexpr int kSweepGraphs = 20;

Graph SweepGraph(int i) {
  ErdosRenyiOptions options;
  options.num_vertices = 70 + 7 * i;
  options.edge_prob = 0.05 + 0.004 * (i % 5);
  options.seed = 1000 + i;
  options.keywords.domain_size = 12;  // dense keywords: communities survive
  options.keywords.keywords_per_vertex = 3;
  Result<Graph> g = MakeErdosRenyi(options);
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

// Trussness by definition: τ(e) is the largest k whose k-truss peel keeps e.
// O(k_max · peel) — independent of the decomposition implementations.
std::vector<std::uint32_t> BruteForceLocalTrussness(const LocalGraph& lg) {
  std::vector<std::uint32_t> trussness(lg.NumEdges(), 2);
  for (std::uint32_t k = 3;; ++k) {
    std::vector<char> alive(lg.NumEdges(), 1);
    auto sup = ComputeLocalEdgeSupports(lg, alive);
    PeelToKTruss(lg, k, &alive, &sup);
    bool any = false;
    for (std::uint32_t e = 0; e < lg.NumEdges(); ++e) {
      if (alive[e]) {
        trussness[e] = k;
        any = true;
      }
    }
    if (!any) return trussness;
  }
}

TEST(TriangleSubstrateTest, OrientedSupportsMatchReferenceSweep) {
  for (int i = 0; i < kSweepGraphs; ++i) {
    const Graph g = SweepGraph(i);
    HopExtractor hop(g);
    LocalGraph lg;
    TriangleSubstrate substrate;
    Rng rng(7 * i + 1);
    for (int c = 0; c < 3; ++c) {
      const VertexId center = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
      ASSERT_TRUE(hop.Extract(center, 3, {}, &lg));
      substrate.Bind(lg);

      std::vector<std::uint32_t> fast;
      substrate.ComputeAllSupports(&fast);
      const std::vector<char> all_alive(lg.NumEdges(), 1);
      EXPECT_EQ(fast, ComputeLocalEdgeSupports(lg, all_alive));

      // Filtered enumeration against a random liveness mask.
      std::vector<char> alive(lg.NumEdges());
      for (auto& a : alive) a = rng.NextBounded(4) != 0;
      substrate.ComputeSupports(alive, &fast);
      EXPECT_EQ(fast, ComputeLocalEdgeSupports(lg, alive));
    }
  }
}

TEST(TriangleSubstrateTest, IncrementalSupportsSurviveKillStreamsSweep) {
  for (int i = 0; i < kSweepGraphs; ++i) {
    const Graph g = SweepGraph(i);
    HopExtractor hop(g);
    LocalGraph lg;
    ASSERT_TRUE(hop.Extract(static_cast<VertexId>(i % g.NumVertices()), 3, {}, &lg));
    if (lg.NumEdges() == 0) continue;

    const std::uint32_t k = 3 + (i % 3);  // interleave peeling at k=3..5
    TriangleSubstrate substrate;
    substrate.Bind(lg);
    std::vector<char> alive(lg.NumEdges(), 1);
    std::vector<std::uint32_t> support;
    substrate.ComputeSupports(alive, &support);
    substrate.SeedPeelQueue(k, alive, support);

    Rng rng(9000 + i);
    for (int round = 0; round < 12; ++round) {
      // Kill a random batch of (possibly already dead) edges, then on odd
      // rounds drain the peel queue; supports must equal a from-scratch
      // recount over the surviving edges after every step.
      std::vector<std::uint32_t> doomed;
      for (int d = 0; d < 4; ++d) {
        doomed.push_back(static_cast<std::uint32_t>(rng.NextBounded(lg.NumEdges())));
      }
      substrate.KillEdges(doomed, k, &alive, &support);
      ASSERT_EQ(support, ComputeLocalEdgeSupports(lg, alive))
          << "graph " << i << " round " << round << " after KillEdges";
      if (round % 2 == 1) {
        substrate.Peel(k, &alive, &support);
        ASSERT_EQ(support, ComputeLocalEdgeSupports(lg, alive))
            << "graph " << i << " round " << round << " after Peel";
        // Peel postcondition: every alive edge closes >= k-2 triangles.
        for (std::uint32_t e = 0; e < lg.NumEdges(); ++e) {
          if (alive[e]) ASSERT_GE(support[e] + 2, k);
        }
      }
    }
  }
}

TEST(TriangleSubstrateTest, PeelMatchesReferencePeelSweep) {
  for (int i = 0; i < kSweepGraphs; ++i) {
    const Graph g = SweepGraph(i);
    HopExtractor hop(g);
    LocalGraph lg;
    ASSERT_TRUE(hop.Extract(0, 2, {}, &lg));
    for (std::uint32_t k = 2; k <= 6; ++k) {
      std::vector<char> ref_alive(lg.NumEdges(), 1);
      auto ref_support = ComputeLocalEdgeSupports(lg, ref_alive);
      PeelToKTruss(lg, k, &ref_alive, &ref_support);

      TriangleSubstrate substrate;
      substrate.Bind(lg);
      std::vector<char> alive(lg.NumEdges(), 1);
      std::vector<std::uint32_t> support;
      substrate.ComputeSupports(alive, &support);
      substrate.SeedPeelQueue(k, alive, support);
      substrate.Peel(k, &alive, &support);

      EXPECT_EQ(alive, ref_alive) << "graph " << i << " k=" << k;
      EXPECT_EQ(support, ref_support) << "graph " << i << " k=" << k;
    }
  }
}

TEST(TriangleSubstrateTest, LocalTrussDecompositionMatchesBruteForceSweep) {
  for (int i = 0; i < kSweepGraphs; ++i) {
    const Graph g = SweepGraph(i);
    HopExtractor hop(g);
    LocalGraph lg;
    ASSERT_TRUE(hop.Extract(static_cast<VertexId>((3 * i) % g.NumVertices()), 2,
                            {}, &lg));
    LocalTrussDecomposer decomposer;
    std::vector<std::uint32_t> trussness;
    std::vector<std::uint32_t> initial;
    decomposer.Decompose(lg, &trussness, &initial);
    EXPECT_EQ(initial,
              ComputeLocalEdgeSupports(lg, std::vector<char>(lg.NumEdges(), 1)));
    EXPECT_EQ(trussness, BruteForceLocalTrussness(lg)) << "graph " << i;
  }
}

TEST(TriangleSubstrateTest, ExtractorModesAgreeSweep) {
  for (int i = 0; i < kSweepGraphs; ++i) {
    const Graph g = SweepGraph(i);
    SeedCommunityExtractor incremental(g);
    SeedCommunityExtractor reference(g);
    for (const std::uint32_t k : {3u, 4u, 5u}) {
      for (const std::uint32_t r : {1u, 2u}) {
        Query query;
        query.keywords = {static_cast<KeywordId>(i % 6),
                          static_cast<KeywordId>(6 + i % 6)};
        query.k = k;
        query.radius = r;
        std::size_t found = 0;
        for (VertexId v = 0; v < g.NumVertices(); ++v) {
          SeedCommunity got;
          SeedCommunity want;
          const bool got_ok = incremental.Extract(
              v, query, SeedCommunityExtractor::Mode::kIncremental, &got);
          const bool want_ok = reference.Extract(
              v, query, SeedCommunityExtractor::Mode::kReference, &want);
          ASSERT_EQ(got_ok, want_ok) << "graph " << i << " v=" << v
                                     << " k=" << k << " r=" << r;
          if (!got_ok) continue;
          ++found;
          ASSERT_EQ(got.center, want.center);
          ASSERT_EQ(got.vertices, want.vertices);
          ASSERT_EQ(got.edges, want.edges);
          if (found == 1) {  // one deep Definition-2 audit per combo
            EXPECT_TRUE(VerifySeedCommunity(g, query, got));
          }
        }
      }
    }
  }
}

// The reference path never touches the substrate, so its counters stay 0;
// the incremental path reports the rounds it absorbed.
TEST(TriangleSubstrateTest, ExtractorReportsSubstrateCounters) {
  const Graph g = ::topl::testing::MakeClique(6);
  SeedCommunityExtractor extractor(g);
  Query query;
  query.keywords = {0};
  query.k = 4;
  query.radius = 1;
  SeedCommunity out;
  ASSERT_TRUE(extractor.Extract(0, query, &out));
  EXPECT_GT(extractor.last_triangles_inspected(), 0u);
  ASSERT_TRUE(extractor.Extract(0, query,
                                SeedCommunityExtractor::Mode::kReference, &out));
  EXPECT_EQ(extractor.last_triangles_inspected(), 0u);
  EXPECT_EQ(extractor.last_support_recomputes_avoided(), 0u);
}

TEST(TriangleSubstrateTest, DetectorAnswersMatchReferenceExtractionSweep) {
  for (int i = 0; i < 8; ++i) {
    const Graph g = SweepGraph(2 * i);
    auto built = BuildIndexFor(g);
    TopLDetector detector(g, built.pre(), built.tree);
    DTopLDetector dtopl(g, built.pre(), built.tree);
    for (const std::uint32_t k : {3u, 4u}) {
      for (const std::uint32_t r : {1u, 2u}) {
        for (const double theta : {0.1, 0.3}) {
          for (const std::uint32_t top_l : {1u, 3u}) {
            Query query;
            query.keywords = {static_cast<KeywordId>(i % 5),
                              static_cast<KeywordId>(5 + i % 7)};
            query.k = k;
            query.radius = r;
            query.theta = theta;
            query.top_l = top_l;

            QueryOptions reference_options;
            reference_options.use_reference_extraction = true;
            Result<TopLResult> got = detector.Search(query);
            Result<TopLResult> want = detector.Search(query, reference_options);
            ASSERT_TRUE(got.ok() && want.ok());
            ASSERT_EQ(got->communities.size(), want->communities.size());
            for (std::size_t c = 0; c < got->communities.size(); ++c) {
              const CommunityResult& a = got->communities[c];
              const CommunityResult& b = want->communities[c];
              ASSERT_EQ(a.community.center, b.community.center);
              ASSERT_EQ(a.community.vertices, b.community.vertices);
              ASSERT_EQ(a.community.edges, b.community.edges);
              ASSERT_EQ(a.influence.vertices, b.influence.vertices);
              ASSERT_EQ(a.influence.cpp, b.influence.cpp);
              ASSERT_EQ(a.score(), b.score());
            }
            EXPECT_EQ(got->stats.communities_found, want->stats.communities_found);
            EXPECT_EQ(want->stats.triangles_inspected, 0u);

            if (theta == 0.1 && top_l == 3) {
              DTopLOptions dopts;
              DTopLOptions ref_dopts;
              ref_dopts.topl_options.use_reference_extraction = true;
              Result<DTopLResult> dgot = dtopl.Search(query, dopts);
              Result<DTopLResult> dwant = dtopl.Search(query, ref_dopts);
              ASSERT_TRUE(dgot.ok() && dwant.ok());
              ASSERT_EQ(dgot->diversity_score, dwant->diversity_score);
              ASSERT_EQ(dgot->communities.size(), dwant->communities.size());
              for (std::size_t c = 0; c < dgot->communities.size(); ++c) {
                ASSERT_EQ(dgot->communities[c].community.vertices,
                          dwant->communities[c].community.vertices);
                ASSERT_EQ(dgot->communities[c].score(),
                          dwant->communities[c].score());
              }
            }
          }
        }
      }
    }
  }
}

// The offline rows derive from the substrate-backed decomposer; check them
// against definition-level recomputation, then check the incremental updater
// still reproduces a from-scratch build byte-for-byte on top of it.
TEST(TriangleSubstrateTest, PrecomputeBoundsMatchDefinitionSweep) {
  for (int i = 0; i < kSweepGraphs; ++i) {
    const Graph g = SweepGraph(i);
    PrecomputeOptions options;
    options.r_max = 2;
    auto built = BuildIndexFor(g, options);

    HopExtractor hop(g);
    LocalGraph ball;
    Rng rng(500 + i);
    for (int s = 0; s < 6; ++s) {
      const VertexId v = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
      ASSERT_TRUE(hop.Extract(v, options.r_max, {}, &ball));
      const auto sup =
          ComputeLocalEdgeSupports(ball, std::vector<char>(ball.NumEdges(), 1));
      std::uint32_t bound = 0;
      for (std::uint32_t r = 1; r <= options.r_max; ++r) {
        for (std::uint32_t e = 0; e < ball.NumEdges(); ++e) {
          if (ball.edge_radius[e] <= r) bound = std::max(bound, sup[e]);
        }
        EXPECT_EQ(built.pre().SupportBound(v, r), bound) << "v=" << v << " r=" << r;
      }
      EXPECT_EQ(built.pre().CenterTrussBound(v),
                LocalCenterTrussness(ball, BruteForceLocalTrussness(ball)))
          << "v=" << v;
    }
  }
}

TEST(TriangleSubstrateTest, IndexUpdaterMatchesRebuildRowsSweep) {
  for (int i = 0; i < 6; ++i) {
    Graph g = SweepGraph(3 * i);
    PrecomputeOptions options;
    options.r_max = 2;
    auto built = BuildIndexFor(g, options);

    Rng rng(77 + i);
    RandomDeltaOptions delta_options;
    delta_options.num_ops = 5;
    delta_options.keyword_domain = 12;
    const GraphDelta delta = MakeRandomDelta(g, rng, delta_options);

    Result<UpdatedIndex> updated =
        IndexUpdater::Apply(g, built.pre(), built.tree, delta);
    ASSERT_TRUE(updated.ok()) << updated.status().ToString();
    auto rebuilt = BuildIndexFor(updated->graph, options);

    const PrecomputedData& incr = *updated->pre;
    const PrecomputedData& full = rebuilt.pre();
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      EXPECT_EQ(incr.CenterTrussBound(v), full.CenterTrussBound(v)) << "v=" << v;
      for (std::uint32_t r = 1; r <= options.r_max; ++r) {
        ASSERT_EQ(incr.SupportBound(v, r), full.SupportBound(v, r))
            << "v=" << v << " r=" << r;
        const auto got_sig = incr.SignatureWords(v, r);
        const auto want_sig = full.SignatureWords(v, r);
        ASSERT_TRUE(std::equal(got_sig.begin(), got_sig.end(), want_sig.begin(),
                               want_sig.end()));
        for (std::uint32_t z = 0; z < incr.num_thetas(); ++z) {
          ASSERT_EQ(incr.ScoreBound(v, r, z), full.ScoreBound(v, r, z))
              << "v=" << v << " r=" << r << " z=" << z;
        }
      }
    }
  }
}

}  // namespace
}  // namespace topl

// Index-geometry invariance: the tree's fanout and leaf capacity are pure
// performance knobs — every shape must return byte-identical answers, and
// pruning must stay safe at the degenerate extremes (binary tree with
// single-vertex leaves; one giant root leaf).

#include <tuple>

#include "core/brute_force.h"
#include "core/topl_detector.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace topl {
namespace {

using testing::BuildIndexFor;
using testing::BuiltIndex;
using testing::Scores;

class IndexShapeTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(IndexShapeTest, ShapeDoesNotAffectAnswers) {
  const auto [fanout, leaf_capacity] = GetParam();
  SmallWorldOptions gen;
  gen.num_vertices = 150;
  gen.seed = 91;
  gen.keywords.domain_size = 10;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());

  TreeIndexOptions tree_opts;
  tree_opts.fanout = fanout;
  tree_opts.leaf_capacity = leaf_capacity;
  const BuiltIndex built = BuildIndexFor(*g, PrecomputeOptions(), tree_opts);
  TopLDetector detector(*g, built.pre(), built.tree);

  Query q;
  q.keywords = {0, 1, 2};
  q.k = 3;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 5;
  Result<TopLResult> indexed = detector.Search(q);
  ASSERT_TRUE(indexed.ok());
  Result<TopLResult> brute = BruteForceTopL(*g, q);
  ASSERT_TRUE(brute.ok());

  const auto a = Scores(indexed->communities);
  const auto b = Scores(brute->communities);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-9) << "fanout=" << fanout
                                  << " leaf=" << leaf_capacity << " rank " << i;
  }
  // Accounting must close under every shape.
  EXPECT_EQ(indexed->stats.TotalPruned() + indexed->stats.candidates_refined,
            g->NumVertices());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IndexShapeTest,
    ::testing::Values(std::make_tuple(2u, 1u),     // binary tree, leaf per vertex
                      std::make_tuple(2u, 4u),
                      std::make_tuple(3u, 7u),     // sizes that do not divide n
                      std::make_tuple(8u, 16u),    // defaults
                      std::make_tuple(64u, 8u),    // flat and wide
                      std::make_tuple(4u, 1000u),  // single root leaf
                      std::make_tuple(1000u, 2u)));  // root directly over leaves

TEST(IndexShapeTest, HeightShrinksWithFanout) {
  SmallWorldOptions gen;
  gen.num_vertices = 300;
  gen.seed = 92;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  Result<PrecomputedData> pre = PrecomputedData::Build(*g, PrecomputeOptions());
  ASSERT_TRUE(pre.ok());
  TreeIndexOptions narrow;
  narrow.fanout = 2;
  narrow.leaf_capacity = 2;
  TreeIndexOptions wide;
  wide.fanout = 32;
  wide.leaf_capacity = 32;
  Result<TreeIndex> t_narrow = TreeIndex::Build(*g, *pre, narrow);
  Result<TreeIndex> t_wide = TreeIndex::Build(*g, *pre, wide);
  ASSERT_TRUE(t_narrow.ok());
  ASSERT_TRUE(t_wide.ok());
  EXPECT_GT(t_narrow->height(), t_wide->height());
  EXPECT_GT(t_narrow->NumNodes(), t_wide->NumNodes());
}

}  // namespace
}  // namespace topl

#include "loadgen/workload.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "gtest/gtest.h"

namespace topl {
namespace loadgen {
namespace {

Graph MakeTestGraph(std::size_t vertices = 500, std::uint64_t seed = 17) {
  SmallWorldOptions gen;
  gen.num_vertices = vertices;
  gen.seed = seed;
  gen.keywords.domain_size = 30;
  gen.keywords.keywords_per_vertex = 3;
  Result<Graph> g = MakeSmallWorld(gen);
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

WorkloadGenerator MakeGenerator(const Graph& graph, WorkloadSpec spec) {
  Result<WorkloadGenerator> generator = WorkloadGenerator::Create(spec, graph);
  EXPECT_TRUE(generator.ok()) << generator.status().ToString();
  return std::move(generator).value();
}

bool SameOperation(const Operation& a, const Operation& b) {
  return a.index == b.index && a.kind == b.kind && a.signature == b.signature &&
         a.delta_seed == b.delta_seed && a.query.keywords == b.query.keywords &&
         a.query.k == b.query.k && a.query.radius == b.query.radius &&
         a.query.theta == b.query.theta && a.query.top_l == b.query.top_l;
}

TEST(WorkloadSpecTest, NamedMixesValidate) {
  for (const char* name :
       {"read_heavy", "update_heavy", "progressive_scan", "mixed"}) {
    Result<WorkloadSpec> spec = WorkloadSpec::Named(name);
    ASSERT_TRUE(spec.ok()) << name;
    EXPECT_EQ(spec->name, name);
    EXPECT_TRUE(spec->Validate().ok()) << name;
    double sum = 0.0;
    for (double f : spec->mix) sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-9) << name;
  }
  EXPECT_FALSE(WorkloadSpec::Named("no_such_mix").ok());
}

TEST(WorkloadSpecTest, ValidateRejectsBadSpecs) {
  WorkloadSpec spec;
  spec.mix = {0.5, 0.5, 0.5, 0.5};
  EXPECT_FALSE(spec.Validate().ok());

  spec = WorkloadSpec();
  spec.num_signatures = 0;
  EXPECT_FALSE(spec.Validate().ok());

  spec = WorkloadSpec();
  spec.params.k_values.clear();
  EXPECT_FALSE(spec.Validate().ok());
}

// The reproducibility contract: the operation stream is a pure function of
// (spec, graph) — two generators built the same way agree operation by
// operation, regardless of the order or the thread the indices are drawn on.
TEST(WorkloadGeneratorTest, SameSeedSameStream) {
  const Graph graph = MakeTestGraph();
  WorkloadSpec spec;
  spec.seed = 99;
  const WorkloadGenerator a = MakeGenerator(graph, spec);
  const WorkloadGenerator b = MakeGenerator(graph, spec);

  constexpr std::uint64_t kOps = 2000;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    ASSERT_TRUE(SameOperation(a.At(i), b.At(i))) << "op " << i;
  }
  EXPECT_EQ(a.StreamDigest(kOps), b.StreamDigest(kOps));

  // Different seed => different stream (digest collision is astronomically
  // unlikely over 2000 ops).
  spec.seed = 100;
  const WorkloadGenerator c = MakeGenerator(graph, spec);
  EXPECT_NE(a.StreamDigest(kOps), c.StreamDigest(kOps));
}

// Threaded, out-of-order, striped At() calls reproduce the exact sequential
// stream — the property that lets injector workers claim indices from one
// shared counter without harming determinism.
TEST(WorkloadGeneratorTest, StreamIsThreadCountInvariant) {
  const Graph graph = MakeTestGraph();
  WorkloadSpec spec;
  spec.seed = 7;
  const WorkloadGenerator generator = MakeGenerator(graph, spec);

  constexpr std::uint64_t kOps = 1024;
  std::vector<Operation> sequential(kOps);
  for (std::uint64_t i = 0; i < kOps; ++i) sequential[i] = generator.At(i);

  for (std::size_t num_threads : {2, 5, 8}) {
    std::vector<Operation> striped(kOps);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < num_threads; ++t) {
      threads.emplace_back([&, t] {
        // Stripe in reverse so each thread also hits indices out of order.
        for (std::uint64_t i = t; i < kOps; i += num_threads) {
          striped[kOps - 1 - i] = generator.At(kOps - 1 - i);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    for (std::uint64_t i = 0; i < kOps; ++i) {
      ASSERT_TRUE(SameOperation(sequential[i], striped[i]))
          << num_threads << " threads, op " << i;
    }
  }
}

TEST(WorkloadGeneratorTest, OperationsRespectParamBandsAndValidate) {
  const Graph graph = MakeTestGraph();
  WorkloadSpec spec;
  const WorkloadGenerator generator = MakeGenerator(graph, spec);

  const auto in_band = [](auto value, const auto& band) {
    for (const auto& allowed : band) {
      if (value == allowed) return true;
    }
    return false;
  };

  for (std::uint64_t i = 0; i < 500; ++i) {
    const Operation op = generator.At(i);
    EXPECT_EQ(op.index, i);
    if (op.kind == OpKind::kUpdate) {
      EXPECT_NE(op.delta_seed, 0u);
      continue;
    }
    EXPECT_TRUE(op.query.Validate().ok()) << "op " << i;
    EXPECT_EQ(op.query.keywords.size(), spec.keywords_per_query);
    EXPECT_LT(op.signature, spec.num_signatures);
    EXPECT_EQ(op.query.keywords, generator.signature(op.signature));
    EXPECT_TRUE(in_band(op.query.k, spec.params.k_values));
    EXPECT_TRUE(in_band(op.query.radius, spec.params.radius_values));
    EXPECT_TRUE(in_band(op.query.theta, spec.params.theta_values));
    EXPECT_TRUE(in_band(op.query.top_l, spec.params.top_l_values));
  }
}

TEST(WorkloadGeneratorTest, MixFractionsAreHonored) {
  const Graph graph = MakeTestGraph();
  Result<WorkloadSpec> spec = WorkloadSpec::Named("mixed");
  ASSERT_TRUE(spec.ok());
  const WorkloadGenerator generator = MakeGenerator(graph, *spec);

  constexpr std::uint64_t kOps = 20000;
  std::array<std::uint64_t, kNumOpKinds> counts{};
  for (std::uint64_t i = 0; i < kOps; ++i) {
    ++counts[static_cast<std::size_t>(generator.At(i).kind)];
  }
  for (std::size_t k = 0; k < kNumOpKinds; ++k) {
    const double observed = static_cast<double>(counts[k]) / kOps;
    EXPECT_NEAR(observed, spec->mix[k], 0.02)
        << OpKindName(static_cast<OpKind>(k));
  }
}

// Zipfian popularity: rank-frequency of the signature pool must follow
// pmf(rank) ∝ (rank+1)^-s. Chi-squared against the exact pmf over a pool of
// 16 signatures and ~40k query draws; the test is deterministic (fixed
// seed), so the threshold only needs to clear the critical value with margin
// (df=15, crit@0.001 ≈ 37.7).
TEST(WorkloadGeneratorTest, ZipfianPopularityMatchesRankFrequency) {
  const Graph graph = MakeTestGraph();
  WorkloadSpec spec;
  spec.mix = {1.0, 0.0, 0.0, 0.0};  // queries only: every op draws a rank
  spec.num_signatures = 16;
  spec.popularity = Popularity::kZipfian;
  spec.zipf_skew = 0.99;
  const WorkloadGenerator generator = MakeGenerator(graph, spec);

  constexpr std::uint64_t kOps = 40000;
  std::vector<std::uint64_t> counts(spec.num_signatures, 0);
  for (std::uint64_t i = 0; i < kOps; ++i) {
    ++counts[generator.At(i).signature];
  }

  double norm = 0.0;
  for (std::uint32_t r = 0; r < spec.num_signatures; ++r) {
    norm += std::pow(static_cast<double>(r + 1), -spec.zipf_skew);
  }
  double chi2 = 0.0;
  for (std::uint32_t r = 0; r < spec.num_signatures; ++r) {
    const double expected =
        kOps * std::pow(static_cast<double>(r + 1), -spec.zipf_skew) / norm;
    const double diff = static_cast<double>(counts[r]) - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 60.0) << "zipf rank-frequency off: chi2=" << chi2;
  // Skew sanity: rank 0 must dominate the tail rank.
  EXPECT_GT(counts[0], 4 * counts[spec.num_signatures - 1]);
}

TEST(WorkloadGeneratorTest, UniformPopularitySpreadsEvenly) {
  const Graph graph = MakeTestGraph();
  WorkloadSpec spec;
  spec.mix = {1.0, 0.0, 0.0, 0.0};
  spec.num_signatures = 16;
  spec.popularity = Popularity::kUniform;
  const WorkloadGenerator generator = MakeGenerator(graph, spec);

  constexpr std::uint64_t kOps = 40000;
  std::vector<std::uint64_t> counts(spec.num_signatures, 0);
  for (std::uint64_t i = 0; i < kOps; ++i) {
    ++counts[generator.At(i).signature];
  }
  const double expected = static_cast<double>(kOps) / spec.num_signatures;
  double chi2 = 0.0;
  for (std::uint64_t count : counts) {
    const double diff = static_cast<double>(count) - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 60.0) << "uniform popularity off: chi2=" << chi2;
}

TEST(WorkloadGeneratorTest, SignaturesComeFromGraphKeywords) {
  const Graph graph = MakeTestGraph();
  WorkloadSpec spec;
  const WorkloadGenerator generator = MakeGenerator(graph, spec);
  for (std::uint32_t s = 0; s < spec.num_signatures; ++s) {
    const std::vector<KeywordId>& signature = generator.signature(s);
    EXPECT_EQ(signature.size(), spec.keywords_per_query);
    for (KeywordId kw : signature) {
      EXPECT_LT(kw, graph.KeywordDomainBound());
    }
    EXPECT_TRUE(std::is_sorted(signature.begin(), signature.end()));
  }
}

TEST(WorkloadGeneratorTest, KeywordFreeGraphIsRejected) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 0.5, 0.5);
  Result<Graph> graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  WorkloadSpec spec;
  EXPECT_FALSE(WorkloadGenerator::Create(spec, *graph).ok());
}

}  // namespace
}  // namespace loadgen
}  // namespace topl

#include "graph/graph_delta.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "graph/delta_io.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace topl {
namespace {

using testing::MakeGraph;
using testing::MakeKeywordGraph;

// A fresh temp path per test; removed on scope exit.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("topl_delta_test_" + name + "_" + std::to_string(::getpid())))
                  .string()) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(GraphDeltaTest, InsertAndDeleteEdges) {
  const Graph base = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}}, 0.5);
  GraphDelta delta;
  delta.DeleteEdge(1, 2);
  delta.InsertEdge(3, 4, 0.7, 0.9);
  Result<Graph> updated = ApplyDelta(base, delta);
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  EXPECT_EQ(updated->NumVertices(), 5u);
  EXPECT_EQ(updated->NumEdges(), 3u);
  EXPECT_TRUE(updated->HasEdge(0, 1));
  EXPECT_FALSE(updated->HasEdge(1, 2));
  EXPECT_TRUE(updated->HasEdge(3, 4));
  // Directional probabilities of the inserted edge survive.
  const EdgeId e = updated->FindEdge(3, 4);
  ASSERT_NE(e, kInvalidEdge);
  for (const Graph::Arc& arc : updated->Neighbors(3)) {
    if (arc.to == 4) EXPECT_FLOAT_EQ(arc.prob, 0.7f);
  }
  for (const Graph::Arc& arc : updated->Neighbors(4)) {
    if (arc.to == 3) EXPECT_FLOAT_EQ(arc.prob, 0.9f);
  }
}

TEST(GraphDeltaTest, ResultMatchesFromScratchBuild) {
  // base + delta must be bit-identical to building the mutated lists from
  // scratch — edge ids, arc order, probabilities, keywords, everything the
  // detectors can observe.
  const Graph base = MakeKeywordGraph(
      4, {{0, 1}, {0, 2}, {1, 2}, {2, 3}}, {{0, 1}, {1}, {2}, {0}}, 0.5);
  GraphDelta delta;
  delta.DeleteEdge(2, 3);
  delta.InsertEdge(1, 3, 0.5);  // same weight as the rest of `expected`
  delta.AddKeyword(3, 5);
  delta.RemoveKeyword(0, 1);
  Result<Graph> updated = ApplyDelta(base, delta);
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();

  const Graph expected = MakeKeywordGraph(
      4, {{0, 1}, {0, 2}, {1, 2}, {1, 3}}, {{0}, {1}, {2}, {0, 5}}, 0.5);
  ASSERT_EQ(updated->NumEdges(), expected.NumEdges());
  for (EdgeId e = 0; e < expected.NumEdges(); ++e) {
    EXPECT_EQ(updated->EdgeSource(e), expected.EdgeSource(e));
    EXPECT_EQ(updated->EdgeTarget(e), expected.EdgeTarget(e));
  }
  for (VertexId v = 0; v < expected.NumVertices(); ++v) {
    ASSERT_EQ(updated->Degree(v), expected.Degree(v));
    const auto got = updated->Neighbors(v);
    const auto want = expected.Neighbors(v);
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].to, want[i].to);
      EXPECT_EQ(got[i].prob, want[i].prob);
      EXPECT_EQ(got[i].edge, want[i].edge);
    }
    const auto got_kw = updated->Keywords(v);
    const auto want_kw = expected.Keywords(v);
    ASSERT_EQ(got_kw.size(), want_kw.size());
    for (std::size_t i = 0; i < want_kw.size(); ++i) {
      EXPECT_EQ(got_kw[i], want_kw[i]);
    }
  }
}

TEST(GraphDeltaTest, ReweightViaDeleteThenInsert) {
  const Graph base = MakeGraph(3, {{0, 1}, {1, 2}}, 0.5);
  GraphDelta delta;
  delta.DeleteEdge(0, 1);
  delta.InsertEdge(0, 1, 0.9);
  Result<Graph> updated = ApplyDelta(base, delta);
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  EXPECT_EQ(updated->NumEdges(), 2u);
  for (const Graph::Arc& arc : updated->Neighbors(0)) {
    if (arc.to == 1) EXPECT_FLOAT_EQ(arc.prob, 0.9f);
  }
}

TEST(GraphDeltaTest, RejectsDeleteOfMissingEdge) {
  const Graph base = MakeGraph(3, {{0, 1}}, 0.5);
  GraphDelta delta;
  delta.DeleteEdge(1, 2);
  const Result<Graph> updated = ApplyDelta(base, delta);
  ASSERT_FALSE(updated.ok());
  EXPECT_TRUE(updated.status().IsInvalidArgument());
}

TEST(GraphDeltaTest, RejectsInsertOfExistingEdge) {
  const Graph base = MakeGraph(3, {{0, 1}}, 0.5);
  GraphDelta delta;
  delta.InsertEdge(1, 0, 0.5);  // either endpoint order collides
  const Result<Graph> updated = ApplyDelta(base, delta);
  ASSERT_FALSE(updated.ok());
  EXPECT_TRUE(updated.status().IsInvalidArgument());
}

TEST(GraphDeltaTest, RejectsBadProbabilityAndSelfLoopAndRange) {
  const Graph base = MakeGraph(3, {{0, 1}}, 0.5);
  {
    GraphDelta delta;
    delta.InsertEdge(1, 2, 0.0);
    EXPECT_FALSE(ApplyDelta(base, delta).ok());
  }
  {
    GraphDelta delta;
    delta.InsertEdge(2, 2, 0.5);
    EXPECT_FALSE(ApplyDelta(base, delta).ok());
  }
  {
    GraphDelta delta;
    delta.InsertEdge(1, 7, 0.5);
    EXPECT_FALSE(ApplyDelta(base, delta).ok());
  }
  {
    GraphDelta delta;
    delta.DeleteEdge(0, 9);
    EXPECT_FALSE(ApplyDelta(base, delta).ok());
  }
}

TEST(GraphDeltaTest, KeywordTransitionsAreStrict) {
  const Graph base = MakeKeywordGraph(2, {{0, 1}}, {{3}, {}}, 0.5);
  {
    // Adding a keyword the vertex already has signals a stale client.
    GraphDelta delta;
    delta.AddKeyword(0, 3);
    EXPECT_FALSE(ApplyDelta(base, delta).ok());
  }
  {
    GraphDelta delta;
    delta.RemoveKeyword(1, 3);
    EXPECT_FALSE(ApplyDelta(base, delta).ok());
  }
  {
    // Remove + re-add of the same pair is a legal (no-op) transition.
    GraphDelta delta;
    delta.RemoveKeyword(0, 3);
    delta.AddKeyword(0, 3);
    Result<Graph> updated = ApplyDelta(base, delta);
    ASSERT_TRUE(updated.ok()) << updated.status().ToString();
    EXPECT_TRUE(updated->HasKeyword(0, 3));
  }
}

// (vertex, keyword) pairs are ordered facts: ops on (3, 9) must never touch
// (9, 3). Regression for a key-canonicalization bug that folded the two.
TEST(GraphDeltaTest, KeywordOpsDoNotCollideAcrossVertices) {
  const Graph base = MakeKeywordGraph(
      10, {{3, 9}}, {{}, {}, {}, {9}, {}, {}, {}, {}, {}, {3}}, 0.5);
  {
    GraphDelta delta;
    delta.RemoveKeyword(3, 9);
    Result<Graph> updated = ApplyDelta(base, delta);
    ASSERT_TRUE(updated.ok()) << updated.status().ToString();
    EXPECT_FALSE(updated->HasKeyword(3, 9));
    EXPECT_TRUE(updated->HasKeyword(9, 3));  // untouched mirror pair
  }
  {
    // Both mirror removals in one delta are distinct ops, not a duplicate.
    GraphDelta delta;
    delta.RemoveKeyword(3, 9);
    delta.RemoveKeyword(9, 3);
    Result<Graph> updated = ApplyDelta(base, delta);
    ASSERT_TRUE(updated.ok()) << updated.status().ToString();
    EXPECT_FALSE(updated->HasKeyword(3, 9));
    EXPECT_FALSE(updated->HasKeyword(9, 3));
  }
}

TEST(GraphDeltaTest, MakeRandomDeltaIsValidAndDeterministic) {
  const Graph base = MakeKeywordGraph(
      12, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {6, 7}, {8, 9}},
      {{0, 1}, {2}, {3}, {4}, {5}, {6}, {7}, {0}, {1}, {2}, {}, {}}, 0.5);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    RandomDeltaOptions options;
    options.num_ops = 5;
    options.keyword_domain = 12;
    const GraphDelta delta = MakeRandomDelta(base, rng, options);
    Result<Graph> updated = ApplyDelta(base, delta);
    EXPECT_TRUE(updated.ok())
        << "seed " << seed << ": " << updated.status().ToString();
    // Same Rng state -> same stream.
    Rng rng2(seed);
    const GraphDelta again = MakeRandomDelta(base, rng2, options);
    EXPECT_EQ(again.NumOps(), delta.NumOps());
    EXPECT_EQ(again.TouchedVertices(), delta.TouchedVertices());
  }
}

TEST(GraphDeltaTest, TouchedVertices) {
  GraphDelta delta;
  delta.DeleteEdge(4, 2);
  delta.InsertEdge(2, 7, 0.5);
  delta.AddKeyword(9, 0);
  delta.RemoveKeyword(4, 1);
  EXPECT_EQ(delta.TouchedVertices(), (std::vector<VertexId>{2, 4, 7, 9}));
  EXPECT_EQ(delta.NumOps(), 4u);
  EXPECT_FALSE(delta.empty());
  EXPECT_TRUE(GraphDelta().empty());
}

TEST(GraphDeltaTest, TextRoundTrip) {
  GraphDelta delta;
  delta.DeleteEdge(1, 2);
  delta.InsertEdge(0, 3, 0.625, 0.75);
  delta.AddKeyword(2, 11);
  delta.RemoveKeyword(0, 4);

  TempFile file("roundtrip");
  ASSERT_TRUE(WriteGraphDeltaText(delta, file.path()).ok());
  Result<GraphDelta> read = ReadGraphDeltaText(file.path());
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->edge_deletes.size(), 1u);
  EXPECT_EQ(read->edge_deletes[0].u, 1u);
  EXPECT_EQ(read->edge_deletes[0].v, 2u);
  ASSERT_EQ(read->edge_inserts.size(), 1u);
  EXPECT_EQ(read->edge_inserts[0].u, 0u);
  EXPECT_EQ(read->edge_inserts[0].v, 3u);
  EXPECT_FLOAT_EQ(read->edge_inserts[0].prob_uv, 0.625f);
  EXPECT_FLOAT_EQ(read->edge_inserts[0].prob_vu, 0.75f);
  ASSERT_EQ(read->keyword_adds.size(), 1u);
  EXPECT_EQ(read->keyword_adds[0].v, 2u);
  EXPECT_EQ(read->keyword_adds[0].w, 11u);
  ASSERT_EQ(read->keyword_removes.size(), 1u);
  EXPECT_EQ(read->keyword_removes[0].v, 0u);
  EXPECT_EQ(read->keyword_removes[0].w, 4u);
}

TEST(GraphDeltaTest, TextParserCommentsDefaultsAndErrors) {
  TempFile file("parse");
  {
    std::FILE* f = std::fopen(file.path().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("# a comment line\n"
               "\n"
               "e+ 3 4 0.5   # symmetric: p_vu defaults to p_uv\n"
               "w+ 1 9\n",
               f);
    std::fclose(f);
    Result<GraphDelta> read = ReadGraphDeltaText(file.path());
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    ASSERT_EQ(read->edge_inserts.size(), 1u);
    EXPECT_FLOAT_EQ(read->edge_inserts[0].prob_vu, 0.5f);
    EXPECT_EQ(read->keyword_adds.size(), 1u);
  }
  {
    std::FILE* f = std::fopen(file.path().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("eX 1 2\n", f);
    std::fclose(f);
    const Result<GraphDelta> read = ReadGraphDeltaText(file.path());
    ASSERT_FALSE(read.ok());
    EXPECT_TRUE(read.status().IsInvalidArgument());
  }
  {
    std::FILE* f = std::fopen(file.path().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("e- 1\n", f);
    std::fclose(f);
    EXPECT_FALSE(ReadGraphDeltaText(file.path()).ok());
  }
  {
    std::FILE* f = std::fopen(file.path().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("w- 1 2 3\n", f);
    std::fclose(f);
    EXPECT_FALSE(ReadGraphDeltaText(file.path()).ok());
  }
  {
    // A malformed optional probability must be rejected, not silently
    // defaulted (regression: the failed extraction used to swallow the
    // trailing-token check).
    std::FILE* f = std::fopen(file.path().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("e+ 0 1 0.5 bogus\n", f);
    std::fclose(f);
    EXPECT_FALSE(ReadGraphDeltaText(file.path()).ok());
  }
  {
    // Ids beyond 32 bits must fail instead of wrapping into another
    // vertex's id (4294967297 = 2^32 + 1 would truncate to vertex 1).
    std::FILE* f = std::fopen(file.path().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("e- 4294967297 5\n", f);
    std::fclose(f);
    const Result<GraphDelta> read = ReadGraphDeltaText(file.path());
    ASSERT_FALSE(read.ok());
    EXPECT_NE(read.status().ToString().find("exceeds 32 bits"),
              std::string::npos);
  }
  {
    std::FILE* f = std::fopen(file.path().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("w+ 2 4294967297\n", f);
    std::fclose(f);
    EXPECT_FALSE(ReadGraphDeltaText(file.path()).ok());
  }
  EXPECT_FALSE(ReadGraphDeltaText("/nonexistent/delta.txt").ok());
}

}  // namespace
}  // namespace topl

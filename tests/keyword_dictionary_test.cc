#include "keywords/keyword_dictionary.h"

#include "gtest/gtest.h"

namespace topl {
namespace {

TEST(KeywordDictionaryTest, InternAssignsDenseIds) {
  KeywordDictionary dict;
  EXPECT_EQ(dict.Intern("movies"), 0u);
  EXPECT_EQ(dict.Intern("books"), 1u);
  EXPECT_EQ(dict.Intern("movies"), 0u);  // idempotent
  EXPECT_EQ(dict.size(), 2u);
}

TEST(KeywordDictionaryTest, FindWithoutInterning) {
  KeywordDictionary dict;
  dict.Intern("health");
  EXPECT_EQ(dict.Find("health"), std::optional<KeywordId>(0));
  EXPECT_EQ(dict.Find("missing"), std::nullopt);
  EXPECT_EQ(dict.size(), 1u);  // Find must not intern
}

TEST(KeywordDictionaryTest, NameRoundTrip) {
  KeywordDictionary dict;
  const KeywordId a = dict.Intern("jewelry");
  const KeywordId b = dict.Intern("crafts");
  EXPECT_EQ(dict.Name(a), "jewelry");
  EXPECT_EQ(dict.Name(b), "crafts");
}

TEST(KeywordDictionaryTest, InternAllSortsAndDeduplicates) {
  KeywordDictionary dict;
  const std::vector<KeywordId> ids =
      dict.InternAll({"zeta", "alpha", "zeta", "mid"});
  // Three distinct keywords; result sorted by id.
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
}

TEST(KeywordDictionaryTest, EmptyStringIsAKeyword) {
  KeywordDictionary dict;
  const KeywordId id = dict.Intern("");
  EXPECT_EQ(dict.Name(id), "");
  EXPECT_TRUE(dict.Find("").has_value());
}

}  // namespace
}  // namespace topl

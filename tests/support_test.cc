#include "truss/support.h"

#include "graph/generators.h"
#include "graph/local_subgraph.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace topl {
namespace {

using testing::MakeClique;
using testing::MakeGraph;
using testing::ReferenceSupports;

TEST(GlobalSupportTest, Triangle) {
  const Graph g = MakeGraph(3, {{0, 1}, {1, 2}, {0, 2}});
  const auto sup = ComputeGlobalEdgeSupports(g);
  for (EdgeId e = 0; e < 3; ++e) EXPECT_EQ(sup[e], 1u);
}

TEST(GlobalSupportTest, PathHasNoTriangles) {
  const Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto sup = ComputeGlobalEdgeSupports(g);
  for (EdgeId e = 0; e < 3; ++e) EXPECT_EQ(sup[e], 0u);
}

TEST(GlobalSupportTest, CliqueSupports) {
  const Graph g = MakeClique(6);
  const auto sup = ComputeGlobalEdgeSupports(g);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) EXPECT_EQ(sup[e], 4u);  // n-2
}

// Property: intersection-based supports equal brute-force triangle counting
// on random graphs, and the parallel path agrees with the serial path.
class SupportPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SupportPropertyTest, MatchesReferenceAndParallel) {
  ErdosRenyiOptions opts;
  opts.num_vertices = 60;
  opts.edge_prob = 0.15;
  opts.seed = GetParam();
  Result<Graph> g = MakeErdosRenyi(opts);
  ASSERT_TRUE(g.ok());
  const auto serial = ComputeGlobalEdgeSupports(*g);
  const auto reference = ReferenceSupports(*g);
  EXPECT_EQ(serial, reference);
  ThreadPool pool(4);
  const auto parallel = ComputeGlobalEdgeSupports(*g, &pool);
  EXPECT_EQ(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SupportPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(LocalSupportTest, MatchesGlobalOnFullExtraction) {
  ErdosRenyiOptions opts;
  opts.num_vertices = 40;
  opts.edge_prob = 0.2;
  opts.seed = 11;
  Result<Graph> g = MakeErdosRenyi(opts);
  ASSERT_TRUE(g.ok());
  HopExtractor ex(*g);
  LocalGraph lg;
  // Radius big enough to cover the connected graph: local supports must
  // equal global supports edge-for-edge.
  ASSERT_TRUE(ex.Extract(0, 100, {}, &lg));
  ASSERT_EQ(lg.NumEdges(), g->NumEdges());
  const std::vector<char> alive(lg.NumEdges(), 1);
  const auto local = ComputeLocalEdgeSupports(lg, alive);
  const auto global = ComputeGlobalEdgeSupports(*g);
  for (std::uint32_t e = 0; e < lg.NumEdges(); ++e) {
    EXPECT_EQ(local[e], global[lg.global_edge_ids[e]]);
  }
}

TEST(LocalSupportTest, DeadEdgesBreakTriangles) {
  const Graph g = MakeGraph(3, {{0, 1}, {1, 2}, {0, 2}});
  HopExtractor ex(g);
  LocalGraph lg;
  ASSERT_TRUE(ex.Extract(0, 2, {}, &lg));
  std::vector<char> alive(3, 1);
  alive[0] = 0;  // kill one edge of the triangle
  const auto sup = ComputeLocalEdgeSupports(lg, alive);
  EXPECT_EQ(sup[0], 0u);
  EXPECT_EQ(sup[1], 0u);
  EXPECT_EQ(sup[2], 0u);
}

TEST(PeelTest, CliqueSurvivesItsTrussLevel) {
  const Graph g = MakeClique(5);
  HopExtractor ex(g);
  LocalGraph lg;
  ASSERT_TRUE(ex.Extract(0, 2, {}, &lg));
  // K5 is a 5-truss: peel at k=5 keeps everything...
  std::vector<char> alive(lg.NumEdges(), 1);
  auto sup = ComputeLocalEdgeSupports(lg, alive);
  PeelToKTruss(lg, 5, &alive, &sup);
  for (char a : alive) EXPECT_TRUE(a);
  // ...and k=6 destroys everything.
  sup = ComputeLocalEdgeSupports(lg, alive);
  PeelToKTruss(lg, 6, &alive, &sup);
  for (char a : alive) EXPECT_FALSE(a);
}

TEST(PeelTest, RemovesPendantEdges) {
  // Triangle {0,1,2} with pendant edge 2-3: k=3 kills only the pendant.
  const Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  HopExtractor ex(g);
  LocalGraph lg;
  ASSERT_TRUE(ex.Extract(0, 3, {}, &lg));
  std::vector<char> alive(lg.NumEdges(), 1);
  auto sup = ComputeLocalEdgeSupports(lg, alive);
  PeelToKTruss(lg, 3, &alive, &sup);
  std::size_t alive_count = 0;
  for (std::uint32_t e = 0; e < lg.NumEdges(); ++e) {
    if (alive[e]) {
      ++alive_count;
      EXPECT_GE(sup[e], 1u);
    }
  }
  EXPECT_EQ(alive_count, 3u);
}

TEST(PeelTest, CascadingCollapse) {
  // Two triangles sharing edge {1,2}: a 4-truss requires every edge in 2
  // triangles; only the shared edge has support 2, so everything unravels.
  const Graph g = MakeGraph(4, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}});
  HopExtractor ex(g);
  LocalGraph lg;
  ASSERT_TRUE(ex.Extract(1, 2, {}, &lg));
  std::vector<char> alive(lg.NumEdges(), 1);
  auto sup = ComputeLocalEdgeSupports(lg, alive);
  PeelToKTruss(lg, 4, &alive, &sup);
  for (char a : alive) EXPECT_FALSE(a);
}

TEST(PeelTest, KTwoIsNoop) {
  const Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  HopExtractor ex(g);
  LocalGraph lg;
  ASSERT_TRUE(ex.Extract(0, 5, {}, &lg));
  std::vector<char> alive(lg.NumEdges(), 1);
  auto sup = ComputeLocalEdgeSupports(lg, alive);
  PeelToKTruss(lg, 2, &alive, &sup);
  for (char a : alive) EXPECT_TRUE(a);
}

// Property: after PeelToKTruss, recomputing supports over the surviving
// edges confirms every survivor has support >= k-2 (internal consistency of
// the incremental decrements).
class PeelPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t>> {};

TEST_P(PeelPropertyTest, SurvivorsSatisfyTrussConstraint) {
  const auto [seed, k] = GetParam();
  ErdosRenyiOptions opts;
  opts.num_vertices = 50;
  opts.edge_prob = 0.25;
  opts.seed = seed;
  Result<Graph> g = MakeErdosRenyi(opts);
  ASSERT_TRUE(g.ok());
  HopExtractor ex(*g);
  LocalGraph lg;
  ASSERT_TRUE(ex.Extract(0, 100, {}, &lg));
  std::vector<char> alive(lg.NumEdges(), 1);
  auto sup = ComputeLocalEdgeSupports(lg, alive);
  PeelToKTruss(lg, k, &alive, &sup);
  const auto recount = ComputeLocalEdgeSupports(lg, alive);
  for (std::uint32_t e = 0; e < lg.NumEdges(); ++e) {
    if (alive[e]) {
      EXPECT_GE(recount[e] + 2, k) << "edge " << e;
      EXPECT_EQ(recount[e], sup[e]) << "incremental support drifted";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndK, PeelPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(3u, 4u, 5u)));

}  // namespace
}  // namespace topl

#include "core/dtopl_detector.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "core/brute_force.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace topl {
namespace {

using testing::BuildIndexFor;
using testing::BuiltIndex;

Query DefaultQuery() {
  Query q;
  q.keywords = {0, 1, 2, 3, 4};
  q.k = 3;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 3;
  return q;
}

Graph Workload(std::uint64_t seed, std::size_t n = 200) {
  SmallWorldOptions gen;
  gen.num_vertices = n;
  gen.seed = seed;
  gen.keywords.domain_size = 10;
  Result<Graph> g = MakeSmallWorld(gen);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(DTopLSelectionTest, GreedyVariantsAgreeExactly) {
  // Lemma 9's lazy evaluation is a pure optimization: Greedy_WP must select
  // the same communities as Greedy_WoP (up to ties, which the diversity
  // score resolves identically here).
  const Graph g = Workload(51);
  Query q = DefaultQuery();
  q.top_l = 60;  // large candidate pool
  Result<std::vector<CommunityResult>> all = EnumerateAllCommunities(g, q);
  ASSERT_TRUE(all.ok());
  if (all->size() < 5) GTEST_SKIP() << "workload produced too few communities";

  for (std::uint32_t l : {2u, 3u, 5u}) {
    std::uint64_t evals_wp = 0;
    std::uint64_t evals_wop = 0;
    const auto wp = SelectDiversifiedGreedyWP(*all, l, &evals_wp);
    const auto wop = SelectDiversifiedGreedyWoP(*all, l, &evals_wop);
    EXPECT_NEAR(DiversityOfSelection(*all, wp), DiversityOfSelection(*all, wop),
                1e-9)
        << "L=" << l;
    // The pruned variant must not evaluate more gains than the exhaustive
    // one (that is its whole point).
    EXPECT_LE(evals_wp, evals_wop);
  }
}

TEST(DTopLSelectionTest, GreedyMatchesOptimalBound) {
  // (1 - 1/e) ≈ 0.632 approximation guarantee against the optimal subset of
  // the same candidate pool.
  const Graph g = Workload(52, 150);
  Query q = DefaultQuery();
  q.top_l = 1000;
  Result<std::vector<CommunityResult>> all = EnumerateAllCommunities(g, q);
  ASSERT_TRUE(all.ok());
  if (all->size() < 6) GTEST_SKIP() << "too few communities";
  // Cap the pool so C(n, L) stays enumerable.
  std::vector<CommunityResult> pool(all->begin(),
                                    all->begin() + std::min<std::size_t>(12, all->size()));
  for (std::uint32_t l : {2u, 3u}) {
    const auto greedy = SelectDiversifiedGreedyWP(pool, l, nullptr);
    Result<std::vector<std::size_t>> optimal =
        SelectDiversifiedOptimal(pool, l, 1'000'000);
    ASSERT_TRUE(optimal.ok());
    const double d_greedy = DiversityOfSelection(pool, greedy);
    const double d_optimal = DiversityOfSelection(pool, *optimal);
    EXPECT_GE(d_optimal + 1e-9, d_greedy);
    EXPECT_GE(d_greedy, (1.0 - 1.0 / M_E) * d_optimal - 1e-9);
  }
}

TEST(DTopLSelectionTest, OptimalRefusesBlowup) {
  const Graph g = Workload(53);
  Query q = DefaultQuery();
  q.top_l = 100;
  Result<std::vector<CommunityResult>> all = EnumerateAllCommunities(g, q);
  ASSERT_TRUE(all.ok());
  if (all->size() < 30) GTEST_SKIP() << "too few communities";
  Result<std::vector<std::size_t>> r = SelectDiversifiedOptimal(*all, 10, 1000);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(DTopLSelectionTest, FirstPickIsHighestInfluence) {
  // ΔD(∅) = σ, so greedy must open with the top-influence community.
  const Graph g = Workload(54);
  Query q = DefaultQuery();
  q.top_l = 40;
  Result<std::vector<CommunityResult>> all = EnumerateAllCommunities(g, q);
  ASSERT_TRUE(all.ok());
  if (all->size() < 2) GTEST_SKIP();
  const auto sel = SelectDiversifiedGreedyWP(*all, 3, nullptr);
  ASSERT_FALSE(sel.empty());
  EXPECT_EQ(sel[0], 0u);  // candidates arrive sorted by σ desc
}

TEST(DTopLSelectionTest, SelectionHasNoDuplicates) {
  const Graph g = Workload(55);
  Query q = DefaultQuery();
  q.top_l = 40;
  Result<std::vector<CommunityResult>> all = EnumerateAllCommunities(g, q);
  ASSERT_TRUE(all.ok());
  if (all->size() < 5) GTEST_SKIP();
  const auto sel = SelectDiversifiedGreedyWP(*all, 5, nullptr);
  const std::set<std::size_t> unique(sel.begin(), sel.end());
  EXPECT_EQ(unique.size(), sel.size());
}

TEST(DTopLSelectionTest, PoolSmallerThanLReturnsPool) {
  const Graph g = Workload(56);
  Query q = DefaultQuery();
  q.top_l = 2;
  Result<std::vector<CommunityResult>> all = EnumerateAllCommunities(g, q);
  ASSERT_TRUE(all.ok());
  std::vector<CommunityResult> pool(
      all->begin(), all->begin() + std::min<std::size_t>(2, all->size()));
  const auto sel = SelectDiversifiedGreedyWP(pool, 10, nullptr);
  EXPECT_EQ(sel.size(), pool.size());
}

TEST(DTopLDetectorTest, EndToEnd) {
  const Graph g = Workload(57, 250);
  const BuiltIndex built = BuildIndexFor(g);
  DTopLDetector detector(g, built.pre(), built.tree);
  Query q = DefaultQuery();
  DTopLOptions opts;
  opts.n_factor = 4;
  Result<DTopLResult> result = detector.Search(q, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LE(result->communities.size(), q.top_l);
  EXPECT_GT(result->diversity_score, 0.0);
  // Diversity can never exceed the summed influences of the selection.
  double sum = 0.0;
  for (const CommunityResult& c : result->communities) sum += c.score();
  EXPECT_LE(result->diversity_score, sum + 1e-9);
}

TEST(DTopLDetectorTest, AlgorithmsProduceSameDiversity) {
  const Graph g = Workload(58, 220);
  const BuiltIndex built = BuildIndexFor(g);
  DTopLDetector detector(g, built.pre(), built.tree);
  Query q = DefaultQuery();
  q.top_l = 2;
  DTopLOptions wp;
  wp.n_factor = 3;
  wp.algorithm = DTopLAlgorithm::kGreedyWithPruning;
  DTopLOptions wop = wp;
  wop.algorithm = DTopLAlgorithm::kGreedyWithoutPruning;
  DTopLOptions optimal = wp;
  optimal.algorithm = DTopLAlgorithm::kOptimal;

  Result<DTopLResult> r_wp = detector.Search(q, wp);
  Result<DTopLResult> r_wop = detector.Search(q, wop);
  Result<DTopLResult> r_opt = detector.Search(q, optimal);
  ASSERT_TRUE(r_wp.ok());
  ASSERT_TRUE(r_wop.ok());
  ASSERT_TRUE(r_opt.ok());
  EXPECT_NEAR(r_wp->diversity_score, r_wop->diversity_score, 1e-9);
  EXPECT_GE(r_opt->diversity_score + 1e-9, r_wp->diversity_score);
  EXPECT_GE(r_wp->diversity_score, (1.0 - 1.0 / M_E) * r_opt->diversity_score - 1e-9);
}

TEST(DTopLDetectorTest, RejectsBadNFactor) {
  const Graph g = Workload(59);
  const BuiltIndex built = BuildIndexFor(g);
  DTopLDetector detector(g, built.pre(), built.tree);
  DTopLOptions opts;
  opts.n_factor = 0;
  EXPECT_FALSE(detector.Search(DefaultQuery(), opts).ok());
}

// Property: greedy diversity is monotone in L (selecting more communities
// never lowers D) and bounded by the sum of candidate scores.
class DTopLPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DTopLPropertyTest, DiversityMonotoneInL) {
  const Graph g = Workload(GetParam());
  Query q = DefaultQuery();
  q.top_l = 50;
  Result<std::vector<CommunityResult>> all = EnumerateAllCommunities(g, q);
  ASSERT_TRUE(all.ok());
  if (all->size() < 4) GTEST_SKIP();
  double prev = 0.0;
  for (std::uint32_t l = 1; l <= std::min<std::size_t>(6, all->size()); ++l) {
    const auto sel = SelectDiversifiedGreedyWP(*all, l, nullptr);
    const double d = DiversityOfSelection(*all, sel);
    EXPECT_GE(d + 1e-12, prev);
    prev = d;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DTopLPropertyTest, ::testing::Values(61, 62, 63));

}  // namespace
}  // namespace topl
